//===- runtime/Runtime.cpp - Self-adjusting-computation RTS ---------------===//
//
// Change-propagation mechanics, following the paper and its substrates:
//
//  * Execution is trampolined (Sec. 6.2): core functions return the next
//    closure; a read hands its dependent closure to the trampoline, so a
//    read body is the rest of the tail-call chain — exactly the dynamic
//    extent normalization assigns to it (Sec. 5).
//
//  * Each read owns a time interval (Start, End). Change propagation
//    re-executes the earliest invalidated read inside its own interval:
//    fresh trace is created at the time cursor, and a read or allocation
//    performed during re-execution that matches an not-yet-reached node of
//    the old trace *splices*: the skipped old prefix is revoked and the
//    matched suffix is kept (memoization, Sec. 1). When re-execution
//    finishes without a match, the remainder of the old interval is
//    revoked.
//
//  * Modifiables are imperative and multi-write (Acar et al., POPL 2008):
//    per modifiable, reads and writes are kept in timestamp order, and a
//    write invalidates exactly the readers between itself and the next
//    write whose seen value actually changed.
//
//  * Blocks freed by revoked allocations are reclaimed at the end of
//    propagation (Hammer & Acar, ISMM 2008), after every read that could
//    reference them has been revoked or re-executed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "runtime/TraceAudit.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

using namespace ceal;

Runtime::Runtime(const Config &C) : Cfg(C) {
  Cursor = Om.base();
  TraceEnd = Cursor;
  GcAllocMark = 0;
  Prof.Enabled = Cfg.EnableProfile;
}

Runtime::~Runtime() = default; // Arena reclaims all trace storage.

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

template <typename NodeT> NodeT *Runtime::newNode() {
  // The simulation knobs are off in every real configuration; keep their
  // work (and the out-of-line GC call) behind one predictable branch.
  if (Cfg.HeapLimitBytes || Cfg.SimSpinPerNode) {
    maybeSimulateGc();
    // Comparator cost model: per-operation boxing/interpretation work.
    uint64_t X = 0x9e3779b97f4a7c15ULL;
    for (unsigned I = 0; I < Cfg.SimSpinPerNode; ++I)
      X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    asm volatile("" : : "r"(X));
  }
  void *Raw = Mem.allocate(sizeof(NodeT) + Cfg.BoxBytesPerNode);
  // RawInit contract: every caller stamps, links, and memo-keys the node
  // before anything inspects it (audits run only between core phases), so
  // the default constructor's zero stores would all be dead.
  return new (Raw) NodeT(TraceNode::RawInit{});
}

template <typename NodeT> void Runtime::destroyNode(NodeT *N) {
  N->~NodeT();
  Mem.deallocate(N, sizeof(NodeT) + Cfg.BoxBytesPerNode);
}

void Runtime::freeClosure(Closure *C) { Mem.deallocate(C, C->byteSize()); }

OmNode *Runtime::stampAfterCursor(OmItem Item) {
  if (Prof.Enabled)
    ++Prof.OmInserts;
  Cursor = Om.insertAfter(Cursor, Item);
  return Cursor;
}

/// insertUse specialized for construction: the cursor is the global
/// timestamp maximum, so \p U always belongs at the tail of \p M's use
/// list and the order query of the general path (three dependent loads
/// through the timestamp and its group) is dead weight. Correct whenever
/// no interval is being re-executed, independent of any fast-path config.
void Runtime::insertUseTail(Modref *M, Use *U) {
  Use *T = Mem.ptr(M->Tail);
  assert((!T || OrderList::precedes(Om.nodeAt(T->Start), Om.nodeAt(U->Start))) &&
         "construction use out of timestamp order");
  Handle<Use> HU = Mem.handle(U);
  U->PrevUse = M->Tail;
  U->NextUse = Handle<Use>{};
  if (T)
    T->NextUse = HU;
  else
    M->Head = HU;
  M->Tail = HU;
  M->Hint = HU;
  if (U->Kind == TraceKind::Read)
    static_cast<ReadNode *>(U)->Gov = writeGoverning(U);
  if (Prof.Enabled)
    Prof.UseScan.record(0);
}

/// Inserts \p U into its modifiable's use list at the position given by
/// its timestamp. The placement scan starts from the modifiable's cursor
/// hint (the use most recently inserted) and walks toward the position in
/// either direction, so an initial run appends in O(1) and mid-interval
/// re-execution pays O(distance from the previous insertion) instead of
/// O(uses after the position). Also seeds the governing-write cache from
/// the predecessor.
void Runtime::insertUse(Modref *M, Use *U) {
  Use *T = Mem.ptr(M->Tail);
  OmNode *UStart = Om.nodeAt(U->Start);
  Handle<Use> HU = Mem.handle(U);
  if (!T || OrderList::precedes(Om.nodeAt(T->Start), UStart)) {
    // Tail append, including the first use of a fresh modifiable: no
    // placement scan, no hint to consult. This is every insertion of the
    // initial run and the overwhelmingly common case in re-execution.
    U->PrevUse = M->Tail;
    U->NextUse = Handle<Use>{};
    if (T)
      T->NextUse = HU;
    else
      M->Head = HU;
    M->Tail = HU;
    M->Hint = HU;
    if (U->Kind == TraceKind::Read)
      static_cast<ReadNode *>(U)->Gov = writeGoverning(U);
    if (Prof.Enabled)
      Prof.UseScan.record(0);
    return;
  }
  uint64_t Steps = 0;
  Use *After = M->Hint ? Mem.ptr(M->Hint) : T;
  // Too late: back up until the candidate precedes U.
  while (After && OrderList::precedes(UStart, Om.nodeAt(After->Start))) {
    After = Mem.ptr(After->PrevUse);
    ++Steps;
  }
  // Too early (stale hint): advance while the successor still precedes U.
  for (;;) {
    Use *Next = After ? Mem.ptr(After->NextUse) : Mem.ptr(M->Head);
    if (!Next || OrderList::precedes(UStart, Om.nodeAt(Next->Start)))
      break;
    After = Next;
    ++Steps;
  }
  if (After) {
    U->PrevUse = Mem.handle(After);
    U->NextUse = After->NextUse;
    After->NextUse = HU;
  } else {
    U->PrevUse = Handle<Use>{};
    U->NextUse = M->Head;
    M->Head = HU;
  }
  if (U->Kind == TraceKind::Read)
    static_cast<ReadNode *>(U)->Gov = writeGoverning(U);
  if (Use *Next = Mem.ptr(U->NextUse))
    Next->PrevUse = HU;
  else
    M->Tail = HU;
  M->Hint = HU;
  S.UseScanSteps += Steps;
  if (Prof.Enabled)
    Prof.UseScan.record(Steps);
}

void Runtime::unlinkUse(Use *U) {
  Modref *M = Mem.ptr(U->Ref);
  Handle<Use> HU = Mem.handle(U);
  if (M->Hint == HU)
    M->Hint = U->PrevUse ? U->PrevUse : U->NextUse;
  if (Use *Prev = Mem.ptr(U->PrevUse))
    Prev->NextUse = U->NextUse;
  else
    M->Head = U->NextUse;
  if (Use *Next = Mem.ptr(U->NextUse))
    Next->PrevUse = U->PrevUse;
  else
    M->Tail = U->PrevUse;
  U->PrevUse = U->NextUse = Handle<Use>{};
}

/// The value a read at this position observes: the latest preceding
/// traced write (cached on the read itself), else the modifiable's
/// meta-written initial value.
Word Runtime::valueGoverning(const ReadNode *R) const {
  if (const WriteNode *G = Mem.ptr(R->Gov))
    return G->Value;
  return Mem.ptr(R->Ref)->Initial;
}

/// The latest traced write strictly preceding U in its use list, derived
/// in O(1): the predecessor is either that write itself or a read whose
/// cache names it. Writes therefore need not store the cache.
Handle<WriteNode> Runtime::writeGoverning(const Use *U) const {
  Use *P = Mem.ptr(U->PrevUse);
  if (!P)
    return Handle<WriteNode>{};
  if (P->Kind == TraceKind::Write)
    return handle_cast<WriteNode>(U->PrevUse);
  return static_cast<ReadNode *>(P)->Gov;
}

//===----------------------------------------------------------------------===//
// Meta interface
//===----------------------------------------------------------------------===//

Modref *Runtime::modref() {
  void *Raw = metaAlloc(sizeof(Modref));
  return new (Raw) Modref();
}

void Runtime::metaFree(Modref *M) {
  assert(!M->Head && "freeing a modifiable with live traced uses");
  M->~Modref();
  metaRelease(M, sizeof(Modref));
}

void Runtime::modify(Modref *M, Word V) {
  assert(CurPhase == Phase::Meta && "modify is a mutator operation");
  M->Initial = V;
  // Readers governed by the initial value are the prefix of the use list
  // up to the first traced write.
  for (Use *U = Mem.ptr(M->Head); U && U->Kind == TraceKind::Read;
       U = Mem.ptr(U->NextUse)) {
    auto *R = static_cast<ReadNode *>(U);
    if (R->SeenValue != V || Cfg.DisableEqualityCut)
      invalidate(R);
  }
}

Word Runtime::deref(const Modref *M) const {
  assert(CurPhase == Phase::Meta && "deref is a mutator operation");
  // The latest traced write is the tail itself or the tail's cached
  // governing write; no backward walk.
  const Use *T = Mem.ptr(M->Tail);
  if (!T)
    return M->Initial;
  const WriteNode *W = T->Kind == TraceKind::Write
                           ? static_cast<const WriteNode *>(T)
                           : Mem.ptr(static_cast<const ReadNode *>(T)->Gov);
  return W ? W->Value : M->Initial;
}

void Runtime::run(Closure *C) {
  assert(CurPhase == Phase::Meta && "run_core is a mutator operation");
  CurPhase = Phase::Running;
  Cursor = TraceEnd; // Append this run's trace after all previous runs.
  const bool FastPath = !Cfg.DisableConstructionFastPath;
  uint64_t Allocs0 = Prof.Enabled ? Mem.allocationCount() : 0;
  if (FastPath)
    Om.beginAppend(); // Construction stamps in monotone order.
  {
    ProfileTimer T(Prof, Prof.RunCoreNs);
    trampoline(C);
    // The memo inserts deferred during construction must land before the
    // meta phase resumes: propagation probes the indexes, and the audits
    // check exact membership. Counted inside RunCoreNs (it is part of the
    // from-scratch cost), itemized under MemoBuildNs.
    flushConstructionMemo();
  }
  if (FastPath)
    Om.finalizeAppend();
  if (Prof.Enabled) {
    ++Prof.RunCoreCalls;
    Prof.ArenaAllocs += Mem.allocationCount() - Allocs0;
  }
  TraceEnd = Cursor;
  CurPhase = Phase::Meta;
  if (Cfg.Audit == AuditLevel::EveryPropagation)
    auditNow("after run_core");
}

void Runtime::reserveTrace(size_t ExpectedOps) {
  // Ratios measured across the bench apps: reads and allocations are each
  // roughly a third to a half of traced operations, timestamps about 1.5x
  // (two per read, one per write/alloc), and a traced operation retains
  // about 80 arena bytes under the compressed node layouts (trace node,
  // closure, user block).
  ReadMemo.reserve(ExpectedOps / 2);
  AllocMemo.reserve(ExpectedOps / 2);
  PendingReadMemo.reserve(ExpectedOps / 2);
  PendingAllocMemo.reserve(ExpectedOps / 2);
  PendingReads.reserve(ExpectedOps / 2);
  Om.reserve(ExpectedOps + ExpectedOps / 2);
#ifdef CEAL_WIDE_TRACE
  constexpr size_t BytesPerOp = 128;
#else
  constexpr size_t BytesPerOp = 80;
#endif
  constexpr size_t MaxReserve = size_t(1) << 30;
  Mem.reserve(std::min(ExpectedOps * BytesPerOp, MaxReserve));
}

void Runtime::flushConstructionMemo() {
  if (PendingReadMemo.empty() && PendingAllocMemo.empty())
    return;
  ProfileTimer T(Prof, Prof.MemoBuildNs);
  ReadMemo.insertBulk(PendingReadMemo.data(), PendingReadMemo.size());
  PendingReadMemo.clear();
  AllocMemo.insertBulk(PendingAllocMemo.data(), PendingAllocMemo.size());
  PendingAllocMemo.clear();
}

void Runtime::propagate() {
  assert(CurPhase == Phase::Meta && "propagate is a mutator operation");
  CurPhase = Phase::Propagating;
  ++S.Propagations;
  if (Cfg.RaceCheck)
    Race.beginPropagate(*this, Cfg.RaceCheckIntervals);
  {
    ProfileTimer Total(Prof, Prof.PropagateNs);
    for (;;) {
      ReadNode *R;
      {
        ProfileTimer T(Prof, Prof.QueueNs);
        R = heapPopMin();
      }
      if (!R)
        break;
      if (Prof.Enabled)
        ++Prof.QueuePops;
      if (!R->isDirty())
        continue;
      R->setDirty(false);
      if (Race.Active)
        Race.setCurrent(R);
      reexecute(R);
    }
    flushDeferredFrees();
  }
  if (Race.Active)
    Race.finishPropagate();
  CurPhase = Phase::Meta;
  if (Cfg.Audit == AuditLevel::EveryPropagation)
    auditNow("after propagate");
}

void Runtime::auditNow(const char *Where) const {
  if (Cfg.Audit == AuditLevel::Off)
    return;
  TraceAudit::enforce(*this, Where);
}

MemoryStats Runtime::memoryStats() const {
  assert(CurPhase == Phase::Meta &&
         "memory accounting requires a quiescent trace");
  MemoryStats S;
  const size_t Box = Cfg.BoxBytesPerNode;
  for (const OmNode *N = Om.base()->Next; N; N = N->Next) {
    ++S.Timestamps;
    OmItem Item = N->Item;
    if (!Item || isEndItem(Item))
      continue;
    const TraceNode *T = itemNode(Mem, Item);
    switch (T->Kind) {
    case TraceKind::Read: {
      const auto *R = static_cast<const ReadNode *>(T);
      ++S.Reads;
      S.ReadBytes += Arena::accountedSize(sizeof(ReadNode) + Box);
      if (const Closure *C = Mem.ptr(R->Clo))
        S.ClosureBytes += Arena::accountedSize(C->byteSize());
      break;
    }
    case TraceKind::Write:
      ++S.Writes;
      S.WriteBytes += Arena::accountedSize(sizeof(WriteNode) + Box);
      break;
    case TraceKind::Alloc: {
      const auto *A = static_cast<const AllocNode *>(T);
      ++S.Allocs;
      S.AllocBytes += Arena::accountedSize(sizeof(AllocNode) + Box);
      if (const Closure *Init = Mem.ptr(A->Init))
        S.ClosureBytes += Arena::accountedSize(Init->byteSize());
      if (A->Size)
        S.UserBlockBytes += Arena::accountedSize(A->Size);
      break;
    }
    }
  }
  S.MetaBytes = MetaBytes;
  S.OmBytes = Om.arena().liveBytes();
  S.MemoIndexBytes = ReadMemo.bucketCount() * sizeof(Handle<ReadNode>) +
                     AllocMemo.bucketCount() * sizeof(Handle<AllocNode>);
  S.ArenaLiveBytes = Mem.liveBytes();
  S.ArenaMaxLiveBytes = Mem.maxLiveBytes();
  S.ArenaBumpUsedBytes = Mem.bumpUsedBytes();
  return S;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

/// Runs the closure chain rooted at \p C. Returns true if the chain ended
/// in a memo splice (the remainder of the computation was recovered from
/// the old trace) rather than by running to completion.
///
/// Reads begun on this trampoline have their interval ends stamped here,
/// innermost (most recent) first, which produces the proper nesting
/// r1.start < r2.start < ... < r2.end < r1.end.
bool Runtime::trampoline(Closure *C) {
  size_t PendingBase = PendingReads.size();
  bool DidSplice = false;
  while (C) {
    if (Prof.Enabled)
      ++Prof.ClosureDispatches;
    // Hand the parked substitution value (read value, block address) to
    // the closure and clear it: only the dispatch immediately after the
    // read/alloc that parked it may consume it.
    Word Sub = PendingSubst;
    PendingSubst = 0;
    Closure *Next = C->fn()(*this, C, Sub);
    if (!C->ownedByTrace())
      freeClosure(C);
    C = Next;
    if (SplicedFlag) {
      SplicedFlag = false;
      DidSplice = true;
      assert(!C && "a spliced read must be returned immediately");
      break;
    }
  }
  for (size_t I = PendingReads.size(); I > PendingBase; --I) {
    ReadNode *R = PendingReads[I - 1];
    R->End = Om.handleOf(stampAfterCursor(endItemOf(Mem, R)));
  }
  PendingReads.resize(PendingBase);
  return DidSplice;
}

Closure *Runtime::read(Modref *M, Closure *C) {
  assert(CurPhase != Phase::Meta && "read is a core operation");
  // The modifiable's header line is not touched until the use-list link,
  // ~50ns of node setup from now; start the (usually cold) fill early.
  __builtin_prefetch(M, 1);
  // SaSML-style simulation: the basic translation allocates one heap
  // continuation per tail jump; model that garbage with transient
  // allocations of a typical boxed-continuation size, so a bounded heap
  // fills at a realistic rate.
  constexpr size_t SimContinuationBytes = 256;
  for (unsigned I = 0; I < Cfg.ExtraAllocsPerRead; ++I) {
    void *Extra = Mem.allocate(SimContinuationBytes);
    Mem.deallocate(Extra, SimContinuationBytes);
  }
  // Construction (no interval being re-executed) never probes the memo
  // index, so its inserts are deferred to the bulk build at the end of
  // run(). The hash itself is still computed here, while the closure's
  // key words sit in cache (hashing at flush time was measurably slower:
  // it re-misses on every closure line).
  const bool EagerMemo = IntervalEnd || Cfg.DisableConstructionFastPath;
  uint64_t Hash = readMemoHash(M, C);
  if (IntervalEnd) {
    ReadNode *Hit;
    {
      ProfileTimer T(Prof, Prof.MemoLookupNs);
      Hit = findReadMemo(M, C, Hash);
    }
    if (Prof.Enabled)
      ++Prof.MemoLookups;
    if (Hit) {
      ++S.MemoReadHits;
      if (Race.Active)
        Race.onMemoHit();
      assert(!C->ownedByTrace() && "memo-spliced closure must be transient");
      freeClosure(C);
      revokeInterval(Cursor, Om.nodeAt(Hit->Start));
      Cursor = Om.nodeAt(Hit->End);
      SplicedFlag = true;
      return nullptr;
    }
  }
  ++S.ReadsTraced;
  ReadNode *R = newNode<ReadNode>();
  R->Ref = Mem.handle(M);
  R->Clo = Mem.handle(C);
  C->setOwnedByTrace(true);
  R->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, R)));
  if (IntervalEnd)
    insertUse(M, R);
  else
    insertUseTail(M, R);
  Word V = valueGoverning(R);
  R->SeenValue = V;
  // The value reaches the closure through the trampoline's substitution
  // register, not a frame slot (the frame has none for it).
  PendingSubst = V;
  if (Prof.Enabled)
    ++Prof.MemoInserts;
  // Propagation both probes and revokes the memo index, so its inserts
  // must be immediate; construction defers them to the bulk build.
  R->Memo.Hash = static_cast<uint32_t>(Hash);
  if (EagerMemo) {
    ReadMemo.insert(R);
  } else {
    PendingReadMemo.push_back(R);
  }
  if (Race.Active)
    Race.onRead(M, R);
  PendingReads.push_back(R);
  return C;
}

void Runtime::write(Modref *M, Word V) {
  assert(CurPhase != Phase::Meta && "write is a core operation");
  __builtin_prefetch(M, 1); // See read(): cold until the use-list link.
  ++S.WritesTraced;
  if (Race.Active)
    Race.onWrite(M);
  WriteNode *W = newNode<WriteNode>();
  W->Ref = Mem.handle(M);
  W->Value = V;
  W->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, W)));
  if (!M->Head) {
    // Fresh modifiable, no trace history: nothing to scan for placement,
    // no governing-write bookkeeping to derive, no readers downstream to
    // retarget or invalidate. This covers every write of the initial run
    // against a just-allocated modifiable (the common CEAL idiom: each
    // output cell is written exactly once, right after its allocation).
    W->PrevUse = W->NextUse = Handle<Use>{};
    M->Head = M->Tail = M->Hint = Mem.handle(static_cast<Use *>(W));
    if (Prof.Enabled)
      Prof.UseScan.record(0);
    return;
  }
  if (!IntervalEnd) {
    // Construction with trace history on the modifiable (a multi-write
    // modref): still a guaranteed tail append, with no readers after it
    // to retarget.
    insertUseTail(M, W);
    return;
  }
  insertUse(M, W);
  // This write governs the readers between itself and the next write:
  // retarget their governing-write cache and invalidate those that saw a
  // different value. The first non-read successor (if any) is the next
  // write, whose previous-write pointer becomes W.
  Handle<WriteNode> HW = Mem.handle(W);
  for (Use *U = Mem.ptr(W->NextUse); U && U->Kind == TraceKind::Read;
       U = Mem.ptr(U->NextUse)) {
    auto *R = static_cast<ReadNode *>(U);
    R->Gov = HW;
    if (R->SeenValue != V || Cfg.DisableEqualityCut)
      invalidate(R);
  }
}

void *Runtime::allocate(size_t Size, Closure *Init, uint8_t NodeFlags) {
  assert(CurPhase != Phase::Meta && "allocate is a core operation");
  // Hard failure in all build types: AllocNode::Size is 32-bit, and a
  // truncated size would corrupt the deferred-free accounting.
  checkAlways(Size < UINT32_MAX,
              "traced allocation exceeds the 32-bit size limit");
  // See read(): construction defers the memo insert, not the hashing.
  const bool EagerMemo = IntervalEnd || Cfg.DisableConstructionFastPath;
  uint64_t Hash = allocMemoHash(Init, Size);
  if (IntervalEnd) {
    AllocNode *Hit;
    {
      ProfileTimer T(Prof, Prof.MemoLookupNs);
      Hit = findAllocMemo(Init, Size, Hash);
    }
    if (Prof.Enabled)
      ++Prof.MemoLookups;
    if (Hit) {
      ++S.MemoAllocHits;
      Handle<void> BlockH = Hit->Block;
      void *Block = Mem.ptr(BlockH);
      uint8_t Flags = Hit->Flags;
      // Steal the block: consume the old node and re-trace the
      // allocation at the cursor. The initializer is not re-run — by the
      // correct-usage restrictions (Sec. 4.2) the block was only
      // side-effected by an initializer that is a function of the key.
      AllocMemo.remove(Hit);
      Om.remove(Om.nodeAt(Hit->Start));
      freeClosure(Mem.ptr(Hit->Init));
      destroyNode(Hit);
      AllocNode *A = newNode<AllocNode>();
      A->Flags = Flags;
      A->Block = BlockH;
      A->Size = static_cast<uint32_t>(Size);
      A->Init = Mem.handle(Init);
      Init->setOwnedByTrace(true);
      A->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, A)));
      A->Memo.Hash = static_cast<uint32_t>(Hash);
      if (Prof.Enabled)
        ++Prof.MemoInserts;
      AllocMemo.insert(A);
      return Block;
    }
  }
  ++S.AllocsTraced;
  void *Block = Mem.allocate(Size);
  AllocNode *A = newNode<AllocNode>();
  A->Flags = NodeFlags;
  A->Block = Mem.handle(Block);
  A->Size = static_cast<uint32_t>(Size);
  A->Init = Mem.handle(Init);
  Init->setOwnedByTrace(true);
  A->Start = Om.handleOf(stampAfterCursor(itemOf(Mem, A)));
  if (Prof.Enabled)
    ++Prof.MemoInserts;
  A->Memo.Hash = static_cast<uint32_t>(Hash);
  if (EagerMemo) {
    AllocMemo.insert(A);
  } else {
    PendingAllocMemo.push_back(A);
  }
  // Run the initializer now; it may not read or write modifiables
  // (correct-usage restriction 2), so it cannot splice or extend traces.
  // The block address travels in the substitution register.
  Closure *Result = Init->fn()(*this, Init, toWord(Block));
  assert(!Result && "initializers must not continue a tail-call chain");
  (void)Result;
  return Block;
}

/// Initializer for dynamically keyed modifiables: the block address
/// arrives in the substitution register; the frame slots are memo-key
/// words it ignores.
static Closure *modrefInitDynamic(Runtime &, Closure *, Word Block) {
  new (fromWord<void *>(Block)) Modref();
  return nullptr;
}

Modref *Runtime::coreModrefDynamic(const Word *Keys, size_t NumKeys) {
  // Hot path of every VM-executed `modref(keys...)`: build the
  // initializer closure in place instead of staging the key words through
  // a heap-allocated frame (the arena closure is needed either way, so
  // this is the minimum — one arena block, no transient allocation).
  checkAlways(NumKeys <= UINT16_MAX,
              "closure arity exceeds the 16-bit frame limit");
  auto *Init = static_cast<Closure *>(Mem.allocate(Closure::byteSize(NumKeys)));
  Init->setHeader(&modrefInitDynamic, NumKeys);
  for (size_t I = 0; I < NumKeys; ++I)
    Init->args()[I] = Keys[I];
  void *Block = allocate(sizeof(Modref), Init, AllocNode::FlagModref);
  return static_cast<Modref *>(Block);
}

//===----------------------------------------------------------------------===//
// Change propagation
//===----------------------------------------------------------------------===//

void Runtime::invalidate(ReadNode *R) {
  if (R->isDirty())
    return;
  R->setDirty(true);
  if (Race.Active)
    Race.onInvalidate(R);
  heapPush(R);
}

void Runtime::reexecute(ReadNode *R) {
  Word V = valueGoverning(R);
  if (V == R->SeenValue && !Cfg.DisableEqualityCut) {
    // The modification history restored the value this read saw; its
    // trace is still consistent.
    ++S.ReadsSkippedClean;
    return;
  }
  ++S.ReadsReexecuted;
  // Re-executed interval size, measured as the trace operations the
  // re-execution performs (nodes traced, revoked, or memo-spliced).
  bool ProfOn = Prof.Enabled;
  uint64_t Work0 = ProfOn ? traceWorkOps() : 0;
  if (ProfOn)
    ++Prof.ReexecCalls;
  {
    ProfileTimer T(Prof, Prof.ReexecNs);
    R->SeenValue = V;
    PendingSubst = V; // Consumed by the first trampoline dispatch below.
    Cursor = Om.nodeAt(R->Start);
    OmNode *End = Om.nodeAt(R->End);
    IntervalEnd = End;
    bool Spliced = trampoline(Mem.ptr(R->Clo));
    if (!Spliced)
      revokeInterval(Cursor, End);
    IntervalEnd = nullptr;
  }
  if (ProfOn)
    Prof.ReexecWork.record(traceWorkOps() - Work0);
}

/// Revokes every old trace node strictly between \p From and \p To.
/// Read nodes remove both their start and end timestamps; end markers
/// encountered directly belong to reads whose start lies in the interval
/// as well and are handled when the start is visited.
void Runtime::revokeInterval(OmNode *From, OmNode *To) {
  ProfileTimer T(Prof, Prof.RevokeNs);
  if (Prof.Enabled)
    ++Prof.RevokeCalls;
  OmNode *N = From->Next;
  while (N && N != To) {
    OmItem Item = N->Item;
    OmNode *Next = N->Next;
    if (isEndItem(Item)) {
      // Skipped: removed together with its read's start. A read whose
      // start precedes the interval cannot end inside it (intervals
      // nest), so the owning read is always revoked by this same walk.
      N = Next;
      continue;
    }
    TraceNode *T = itemNode(Mem, Item);
    switch (T->Kind) {
    case TraceKind::Read: {
      auto *R = static_cast<ReadNode *>(T);
      // The read's end node is ahead of us and about to be deleted; if it
      // is the immediate successor, step over it.
      if (Om.nodeAt(R->End) == Next)
        Next = Next->Next;
      revokeRead(R);
      break;
    }
    case TraceKind::Write:
      revokeWrite(static_cast<WriteNode *>(T));
      break;
    case TraceKind::Alloc:
      revokeAlloc(static_cast<AllocNode *>(T));
      break;
    }
    N = Next;
  }
}

void Runtime::revokeRead(ReadNode *R) {
  ++S.NodesRevoked;
  if (Race.Active)
    Race.onRevokeRead(R);
  if (R->HeapIndex >= 0)
    heapRemove(R);
  ReadMemo.remove(R);
  unlinkUse(R);
  Om.remove(Om.nodeAt(R->Start));
  assert(R->End && "revoking a read whose interval is still open");
  Om.remove(Om.nodeAt(R->End));
  freeClosure(Mem.ptr(R->Clo));
  destroyNode(R);
}

void Runtime::revokeWrite(WriteNode *W) {
  ++S.NodesRevoked;
  // Readers this write governed fall back to the previous write (or the
  // initial value); invalidate those that saw something different.
  Handle<WriteNode> PrevH = writeGoverning(W);
  WriteNode *Prev = Mem.ptr(PrevH);
  Word PrevValue = Prev ? Prev->Value : Mem.ptr(W->Ref)->Initial;
  for (Use *U = Mem.ptr(W->NextUse); U && U->Kind == TraceKind::Read;
       U = Mem.ptr(U->NextUse)) {
    auto *R = static_cast<ReadNode *>(U);
    // Retarget the governing-write cache to the write this one shadowed.
    R->Gov = PrevH;
    if (R->SeenValue != PrevValue || Cfg.DisableEqualityCut)
      invalidate(R);
  }
  unlinkUse(W);
  Om.remove(Om.nodeAt(W->Start));
  destroyNode(W);
}

void Runtime::revokeAlloc(AllocNode *A) {
  ++S.NodesRevoked;
  AllocMemo.remove(A);
  Om.remove(Om.nodeAt(A->Start));
  freeClosure(Mem.ptr(A->Init));
  DeferredFrees.push_back({Mem.ptr(A->Block), A->Size, A->isModrefBlock()});
  destroyNode(A);
}

void Runtime::flushDeferredFrees() {
  for (const DeferredFree &F : DeferredFrees) {
    if (F.IsModref) {
      // The block is an array of modifiables (coreModref allocates an
      // array of one). By this point every use must have been revoked or
      // re-targeted; a live use means the core program violated the
      // correct-usage restrictions, in which case we leak rather than
      // dangle.
      auto *Arr = static_cast<Modref *>(F.Block);
      size_t Count = F.Size / sizeof(Modref);
      bool AnyLive = false;
      for (size_t I = 0; I < Count; ++I) {
        assert(!Arr[I].Head &&
               "collected modifiable still has live uses; core program "
               "violates the correct-usage restrictions");
        AnyLive |= static_cast<bool>(Arr[I].Head);
      }
      if (AnyLive)
        continue;
      for (size_t I = 0; I < Count; ++I)
        Arr[I].~Modref();
    }
    Mem.deallocate(F.Block, F.Size);
  }
  DeferredFrees.clear();
}

//===----------------------------------------------------------------------===//
// Memo indexes
//===----------------------------------------------------------------------===//

uint64_t Runtime::readMemoHash(const Modref *M, const Closure *C) const {
  // identityBits covers the code pointer and the arity; the frame holds
  // only key words (the pending value has no slot), so every stored
  // argument participates.
  uint64_t H = hashMixWord(0x51ab5eed, C->identityBits());
  H = hashMixWord(H, reinterpret_cast<uintptr_t>(M));
  for (size_t I = 0, N = C->numArgs(); I < N; ++I)
    H = hashMixWord(H, C->args()[I]);
  return H;
}

uint64_t Runtime::allocMemoHash(const Closure *Init, size_t Size) const {
  uint64_t H = hashMixWord(0xa110c5eed, Init->identityBits());
  H = hashMixWord(H, Size);
  for (size_t I = 0, N = Init->numArgs(); I < N; ++I)
    H = hashMixWord(H, Init->args()[I]);
  return H;
}

/// True if an old trace node starting at \p Start may be reused: it must
/// lie strictly between the cursor and the end of the interval being
/// re-executed.
bool Runtime::inReuseWindow(const OmNode *Start) const {
  return OrderList::precedes(Cursor, Start) &&
         OrderList::precedes(Start, IntervalEnd);
}

static bool sameTrailingArgs(const Closure *A, const Closure *B) {
  if (A->identityBits() != B->identityBits())
    return false;
  for (size_t I = 0, N = A->numArgs(); I < N; ++I)
    if (A->args()[I] != B->args()[I])
      return false;
  return true;
}

ReadNode *Runtime::findReadMemo(const Modref *M, const Closure *C,
                                uint64_t Hash) {
  const uint32_t H32 = static_cast<uint32_t>(Hash);
  ReadNode *Best = nullptr;
  for (ReadNode *N = ReadMemo.chainHead(Hash); N; N = ReadMemo.next(N)) {
    if (N->Memo.Hash != H32 || Mem.ptr(N->Ref) != M ||
        !sameTrailingArgs(Mem.ptr(N->Clo), C))
      continue;
    if (!inReuseWindow(Om.nodeAt(N->Start)))
      continue;
    if (!Best ||
        OrderList::precedes(Om.nodeAt(N->Start), Om.nodeAt(Best->Start)))
      Best = N;
  }
  return Best;
}

AllocNode *Runtime::findAllocMemo(const Closure *Init, size_t Size,
                                  uint64_t Hash) {
  const uint32_t H32 = static_cast<uint32_t>(Hash);
  AllocNode *Best = nullptr;
  for (AllocNode *N = AllocMemo.chainHead(Hash); N; N = AllocMemo.next(N)) {
    if (N->Memo.Hash != H32 || N->Size != Size ||
        !sameTrailingArgs(Mem.ptr(N->Init), Init))
      continue;
    if (!inReuseWindow(Om.nodeAt(N->Start)))
      continue;
    if (!Best ||
        OrderList::precedes(Om.nodeAt(N->Start), Om.nodeAt(Best->Start)))
      Best = N;
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Propagation queue: intrusive binary heap ordered by start timestamp
//===----------------------------------------------------------------------===//

bool Runtime::heapLess(const ReadNode *A, const ReadNode *B) const {
  return OrderList::precedes(Om.nodeAt(A->Start), Om.nodeAt(B->Start));
}

void Runtime::heapPush(ReadNode *R) {
  assert(R->HeapIndex < 0 && "node already queued");
  R->HeapIndex = static_cast<int32_t>(Heap.size());
  Heap.push_back(R);
  heapSiftUp(Heap.size() - 1);
}

ReadNode *Runtime::heapPopMin() {
  if (Heap.empty())
    return nullptr;
  ReadNode *Min = Heap.front();
  Min->HeapIndex = -1;
  ReadNode *Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    Last->HeapIndex = 0;
    heapSiftDown(0);
  }
  return Min;
}

void Runtime::heapRemove(ReadNode *R) {
  size_t Index = static_cast<size_t>(R->HeapIndex);
  assert(Index < Heap.size() && Heap[Index] == R && "heap index corrupt");
  R->HeapIndex = -1;
  ReadNode *Last = Heap.back();
  Heap.pop_back();
  if (Last == R)
    return;
  Heap[Index] = Last;
  Last->HeapIndex = static_cast<int32_t>(Index);
  heapSiftDown(Index);
  heapSiftUp(static_cast<size_t>(Last->HeapIndex));
}

void Runtime::heapSiftUp(size_t Index) {
  while (Index > 0) {
    size_t Parent = (Index - 1) / 2;
    if (!heapLess(Heap[Index], Heap[Parent]))
      break;
    std::swap(Heap[Index], Heap[Parent]);
    Heap[Index]->HeapIndex = static_cast<int32_t>(Index);
    Heap[Parent]->HeapIndex = static_cast<int32_t>(Parent);
    Index = Parent;
  }
}

void Runtime::heapSiftDown(size_t Index) {
  for (;;) {
    size_t Left = Index * 2 + 1;
    if (Left >= Heap.size())
      return;
    size_t Small = Left;
    size_t Right = Left + 1;
    if (Right < Heap.size() && heapLess(Heap[Right], Heap[Left]))
      Small = Right;
    if (!heapLess(Heap[Small], Heap[Index]))
      return;
    std::swap(Heap[Index], Heap[Small]);
    Heap[Index]->HeapIndex = static_cast<int32_t>(Index);
    Heap[Small]->HeapIndex = static_cast<int32_t>(Small);
    Index = Small;
  }
}

//===----------------------------------------------------------------------===//
// Simulated tracing GC (SaSML-style configuration only)
//===----------------------------------------------------------------------===//

void Runtime::maybeSimulateGc() {
  if (Cfg.HeapLimitBytes == 0)
    return;
  size_t Live = Mem.liveBytes();
  if (Live >= Cfg.HeapLimitBytes) {
    Oom = true;
    return;
  }
  // A collection runs whenever allocation has consumed the free space —
  // which shrinks as the live trace approaches the limit, so collections
  // grow more frequent super-linearly under memory pressure.
  size_t Headroom = std::max<size_t>(Cfg.HeapLimitBytes - Live, 1 << 14);
  size_t Total = Mem.totalAllocatedBytes();
  // Defensive re-anchor: if the mark is ahead of the cumulative counter
  // (an arena stats reset without a matching mark reset), the subtraction
  // below would wrap and force a collection on every allocation.
  if (Total < GcAllocMark)
    GcAllocMark = Total;
  if (Total - GcAllocMark < Headroom)
    return;
  // "Collect": a tracing collector's cost is proportional to the live
  // data; walk every live timestamp and touch the trace object it marks
  // (the pointer chase is what makes real collections expensive).
  ++S.GcScans;
  uint64_t Sink = 0;
  for (const OmNode *N = Om.base(); N; N = N->Next) {
    Sink += N->Label;
    if (N->Item && !isEndItem(N->Item))
      Sink += itemNode(Mem, N->Item)->Flags;
  }
  asm volatile("" : : "r"(Sink) : "memory");
  GcAllocMark = Mem.totalAllocatedBytes();
}
