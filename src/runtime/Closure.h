//===- runtime/Closure.h - Closures and monomorphized makers ---*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closure representation of the run-time system (paper Sec. 6.1:
/// closure_make / closure_run). A closure is a code pointer plus a frame
/// of word-sized arguments; trampolines iterate closures returned by core
/// code, and the trace stores each read's closure so change propagation
/// can re-execute it.
///
/// The paper's compiler monomorphizes closure_make per argument signature
/// (Sec. 6.3); here the C++ template machinery below generates exactly one
/// encode/decode pair per (function, signature), which is the same
/// specialization without a compiler pass.
///
/// Two layout economies keep closures at one word of header plus the
/// stored arguments:
///
///  * The header packs the code pointer (47 bits cover canonical user
///    addresses on x86-64 and AArch64), the argument count, and the
///    trace-ownership flag into one uint64_t, checked — not assumed — at
///    fill time.
///
///  * Closures awaiting a value (a read's continuation waiting for the
///    cell's contents, an allocation initializer waiting for its block)
///    do not reserve a frame slot for it. The pending value travels in a
///    trampoline register — the Subst parameter of ClosureFn — and the
///    "subst" invoker flavor below binds it to the function's first
///    declared parameter. This removes one word from every traced read.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_CLOSURE_H
#define CEAL_RUNTIME_CLOSURE_H

#include "runtime/Word.h"
#include "support/Check.h"

#include <cassert>
#include <tuple>
#include <utility>

namespace ceal {

class Runtime;
struct Closure;

/// The code pointer stored in a closure. Returning a closure continues the
/// tail-call chain on the active trampoline; returning null ends it.
/// \p Subst carries the pending substitution value (the read value or the
/// fresh allocation block) for closures built with a placeholder; plain
/// closures ignore it.
using ClosureFn = Closure *(*)(Runtime &, Closure *, Word Subst);

/// A heap closure: a packed one-word header plus an inline frame of word
/// arguments. Allocated from the runtime arena via Runtime::make<Fn>().
struct Closure {
  /// fn (bits 0..46) | numArgs (bits 47..62) | owned-by-trace (bit 63).
  uint64_t FnBits;

  static constexpr unsigned NumArgsShift = 47;
  static constexpr uint64_t FnMask = (uint64_t(1) << NumArgsShift) - 1;
  static constexpr uint64_t OwnedBit = uint64_t(1) << 63;

  ClosureFn fn() const {
    return reinterpret_cast<ClosureFn>(FnBits & FnMask);
  }
  size_t numArgs() const { return (FnBits >> NumArgsShift) & 0xffff; }
  /// Set while the closure is owned by a trace node (a read's closure must
  /// outlive its execution so propagation can re-run it); transient
  /// closures are freed by the trampoline after they run.
  bool ownedByTrace() const { return (FnBits & OwnedBit) != 0; }
  void setOwnedByTrace(bool Owned) {
    FnBits = Owned ? (FnBits | OwnedBit) : (FnBits & ~OwnedBit);
  }
  /// The header with the ownership bit masked off: function identity plus
  /// arity, suitable for memo keys.
  uint64_t identityBits() const { return FnBits & ~OwnedBit; }

  void setHeader(ClosureFn Fn, size_t NumArgs) {
    auto Code = reinterpret_cast<uint64_t>(Fn);
    checkAlways((Code & ~FnMask) == 0,
                "closure code pointer exceeds the 47-bit packed range");
    FnBits = Code | (uint64_t(NumArgs) << NumArgsShift);
  }

  Word *args() { return reinterpret_cast<Word *>(this + 1); }
  const Word *args() const {
    return reinterpret_cast<const Word *>(this + 1);
  }

  static size_t byteSize(size_t NumArgs) {
    return sizeof(Closure) + NumArgs * sizeof(Word);
  }
  size_t byteSize() const { return byteSize(numArgs()); }
};

static_assert(sizeof(Closure) == 8, "closure header must be one word");

/// Extracts the declared parameter list of a core function. Core functions
/// have the shape `Closure *f(Runtime &, T0, T1, ...)` where each Ti is
/// word-sized.
template <typename F> struct CoreFnTraits;
template <typename... As> struct CoreFnTraits<Closure *(*)(Runtime &, As...)> {
  using ArgsTuple = std::tuple<As...>;
  static constexpr size_t Arity = sizeof...(As);
};

namespace detail {

template <auto Fn, typename... As, size_t... I>
Closure *invokeClosure(Runtime &RT, Closure *C, std::index_sequence<I...>) {
  assert(C->numArgs() == sizeof...(As) && "closure arity mismatch");
  return Fn(RT, fromWord<As>(C->args()[I])...);
}

/// The monomorphized trampoline entry for one (function, signature) pair.
/// Plain flavor: every declared argument is stored in the frame; the
/// substitution register is unused.
template <auto Fn, typename... As>
Closure *closureInvoker(Runtime &RT, Closure *C, Word /*Subst*/) {
  return invokeClosure<Fn, As...>(RT, C, std::index_sequence_for<As...>{});
}

template <auto Fn, typename S, typename... Rest, size_t... I>
Closure *invokeSubstClosure(Runtime &RT, Closure *C, Word Subst,
                            std::index_sequence<I...>) {
  assert(C->numArgs() == sizeof...(Rest) && "subst closure arity mismatch");
  return Fn(RT, fromWord<S>(Subst), fromWord<Rest>(C->args()[I])...);
}

/// Subst flavor: the function's first declared parameter arrives in the
/// trampoline's substitution register; only the trailing arguments have
/// frame slots.
template <auto Fn, typename S, typename... Rest>
Closure *substClosureInvoker(Runtime &RT, Closure *C, Word Subst) {
  return invokeSubstClosure<Fn, S, Rest...>(RT, C, Subst,
                                            std::index_sequence_for<Rest...>{});
}

template <auto Fn, typename Tuple> struct ClosureMaker;

template <auto Fn, typename... As>
struct ClosureMaker<Fn, std::tuple<As...>> {
  static constexpr ClosureFn Invoker = &closureInvoker<Fn, As...>;

  static void fill(Closure *C, As... Vs) {
    C->setHeader(Invoker, sizeof...(As));
    size_t I = 0;
    ((C->args()[I++] = toWord<As>(Vs)), ...);
    (void)I;
  }
};

template <auto Fn, typename Tuple> struct SubstClosureMaker;

template <auto Fn, typename S, typename... Rest>
struct SubstClosureMaker<Fn, std::tuple<S, Rest...>> {
  static constexpr ClosureFn Invoker = &substClosureInvoker<Fn, S, Rest...>;
  /// Frame words: the placeholder parameter has no slot.
  static constexpr size_t FrameArgs = sizeof...(Rest);

  static void fill(Closure *C, Rest... Vs) {
    C->setHeader(Invoker, sizeof...(Rest));
    size_t I = 0;
    ((C->args()[I++] = toWord<Rest>(Vs)), ...);
    (void)I;
  }
};

} // namespace detail

} // namespace ceal

#endif // CEAL_RUNTIME_CLOSURE_H
