//===- runtime/Closure.h - Closures and monomorphized makers ---*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closure representation of the run-time system (paper Sec. 6.1:
/// closure_make / closure_run). A closure is a code pointer plus a frame
/// of word-sized arguments; trampolines iterate closures returned by core
/// code, and the trace stores each read's closure so change propagation
/// can re-execute it.
///
/// The paper's compiler monomorphizes closure_make per argument signature
/// (Sec. 6.3); here the C++ template machinery below generates exactly one
/// encode/decode pair per (function, signature), which is the same
/// specialization without a compiler pass.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_CLOSURE_H
#define CEAL_RUNTIME_CLOSURE_H

#include "runtime/Word.h"

#include <cassert>
#include <tuple>
#include <utility>

namespace ceal {

class Runtime;
struct Closure;

/// The code pointer stored in a closure. Returning a closure continues the
/// tail-call chain on the active trampoline; returning null ends it.
using ClosureFn = Closure *(*)(Runtime &, Closure *);

/// A heap closure: code pointer plus an inline frame of word arguments.
/// Allocated from the runtime arena via Runtime::make<Fn>().
struct Closure {
  ClosureFn Fn;
  uint16_t NumArgs;
  /// Set while the closure is owned by a trace node (a read's closure must
  /// outlive its execution so propagation can re-run it); transient
  /// closures are freed by the trampoline after they run.
  uint16_t OwnedByTrace;
  uint32_t Pad = 0;

  Word *args() { return reinterpret_cast<Word *>(this + 1); }
  const Word *args() const {
    return reinterpret_cast<const Word *>(this + 1);
  }

  static size_t byteSize(size_t NumArgs) {
    return sizeof(Closure) + NumArgs * sizeof(Word);
  }
  size_t byteSize() const { return byteSize(NumArgs); }
};

/// Extracts the declared parameter list of a core function. Core functions
/// have the shape `Closure *f(Runtime &, T0, T1, ...)` where each Ti is
/// word-sized.
template <typename F> struct CoreFnTraits;
template <typename... As> struct CoreFnTraits<Closure *(*)(Runtime &, As...)> {
  using ArgsTuple = std::tuple<As...>;
  static constexpr size_t Arity = sizeof...(As);
};

namespace detail {

template <auto Fn, typename... As, size_t... I>
Closure *invokeClosure(Runtime &RT, Closure *C, std::index_sequence<I...>) {
  assert(C->NumArgs == sizeof...(As) && "closure arity mismatch");
  return Fn(RT, fromWord<As>(C->args()[I])...);
}

/// The monomorphized trampoline entry for one (function, signature) pair.
template <auto Fn, typename... As>
Closure *closureInvoker(Runtime &RT, Closure *C) {
  return invokeClosure<Fn, As...>(RT, C, std::index_sequence_for<As...>{});
}

template <auto Fn, typename Tuple> struct ClosureMaker;

template <auto Fn, typename... As>
struct ClosureMaker<Fn, std::tuple<As...>> {
  static constexpr ClosureFn Invoker = &closureInvoker<Fn, As...>;

  static void fill(Closure *C, As... Vs) {
    C->Fn = Invoker;
    C->NumArgs = sizeof...(As);
    C->OwnedByTrace = 0;
    size_t I = 0;
    ((C->args()[I++] = toWord<As>(Vs)), ...);
    (void)I;
  }
};

} // namespace detail

} // namespace ceal

#endif // CEAL_RUNTIME_CLOSURE_H
