//===- runtime/RaceCheck.h - Determinacy-race detector ---------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the parallel-safety subsystem: a determinacy-race
/// detector for change propagation. The static interference analysis
/// (analysis/Interference) proves entry-point pairs disjoint at the
/// region-class level; this detector tests the same property on concrete
/// traces, instance by instance, so a propagation whose dirty set the
/// static analysis could not separate can still be shown partitionable.
///
/// The partition is the one an interval-parallel propagator would use
/// (ROADMAP: parallel change propagation over OM-timestamp intervals):
/// at the start of propagate() the pending dirty reads are sorted by
/// start timestamp, merged into clusters of overlapping [Start, End]
/// trace intervals (read intervals nest, so overlapping dirty reads are
/// transitively one re-execution region), and the clusters are split
/// contiguously into at most Config::RaceCheckIntervals groups. A
/// parallel propagator could run those groups concurrently if and only
/// if no group touches a modifiable another group touches conflictingly.
///
/// Propagation still runs single-threaded and fully deterministic; the
/// detector only tags. Every traced read, write, memo splice, and
/// cascade invalidation performed while re-executing a read is charged
/// to that read's interval group, and per modifiable the detector keeps
/// interval bitmasks of readers and writers:
///
///  * write from interval i with another interval in the writer mask:
///    WW conflict — the groups are unordered, the store order would be
///    scheduler-dependent.
///  * write from interval i with another interval in the reader mask
///    (or a read observing a foreign writer bit): RW conflict — the
///    read's value would depend on the schedule.
///  * a re-execution in interval i invalidating a read owned by another
///    interval: a cross-interval cascade — the other group's work list
///    would grow mid-flight, so the groups are ordered, not independent.
///
/// Zero conflicts across a propagation means that propagation was
/// provably partitionable into the reported intervals.
///
/// Discipline matches runtime/Profile.h: always compiled, off by
/// default, and when off every hot-path hook is one predictable branch
/// on a single bool. All detector state lives in side tables keyed by
/// node/modref address — trace node layouts (and their size contracts
/// in Trace.h) are untouched. Diagnostics carry modifiable addresses as
/// opaque ids; they are never dereferenced after the propagation ends.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_RACECHECK_H
#define CEAL_RUNTIME_RACECHECK_H

#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace ceal {

class Runtime;
struct Modref;
struct ReadNode;

/// One cross-interval conflict observed during a propagation.
struct RaceConflict {
  enum Kind : uint8_t {
    WW,                ///< two intervals wrote the same modifiable
    RW,                ///< one interval read what another wrote
    CascadeInvalidate, ///< one interval invalidated a read owned by another
  };
  Kind K;
  /// The two interval groups involved (A is the acting interval).
  uint32_t IntervalA = 0;
  uint32_t IntervalB = 0;
  /// Opaque identity of the contended object: the modifiable's address
  /// for WW/RW, the invalidated read's address for cascades. Never
  /// dereferenced — valid only as a correlation key.
  uintptr_t ObjectId = 0;
};

inline const char *raceConflictKindName(RaceConflict::Kind K) {
  switch (K) {
  case RaceConflict::WW:
    return "ww";
  case RaceConflict::RW:
    return "rw";
  case RaceConflict::CascadeInvalidate:
    return "cascade";
  }
  return "?";
}

/// What one checked propagation did, retained until the next one begins
/// (readable from the meta phase via Runtime::raceReport()).
struct RaceReport {
  /// Interval groups the dirty set was split into (<= the configured
  /// count; 0 when the propagation had nothing pending).
  uint32_t Intervals = 0;
  /// Overlap clusters before the contiguous split (>= Intervals).
  uint32_t Clusters = 0;
  uint64_t InitialDirtyReads = 0;
  /// Operations charged to an interval during the propagation.
  uint64_t TaggedReads = 0;
  uint64_t TaggedWrites = 0;
  uint64_t TaggedMemoHits = 0;
  /// Reads invalidated while propagating (any interval, own included).
  uint64_t CascadeInvalidations = 0;
  /// Conflict tallies count every occurrence; Conflicts records the
  /// first MaxRecorded with their interval pair and object id.
  uint64_t WwConflicts = 0;
  uint64_t RwConflicts = 0;
  uint64_t CascadeConflicts = 0;
  static constexpr size_t MaxRecorded = 64;
  std::vector<RaceConflict> Conflicts;

  uint64_t conflictCount() const {
    return WwConflicts + RwConflicts + CascadeConflicts;
  }
  /// True when the propagation was proven safe to run with its interval
  /// groups in parallel (vacuously true for <= 1 interval).
  bool partitionable() const { return conflictCount() == 0; }

  /// Emits the report as one JSON object (no trailing newline).
  void writeJson(std::ostream &Out) const;
};

/// The interval clustering shared by the race detector and the parallel
/// propagator: the pending dirty reads in start-timestamp order, each
/// tagged with the overlap cluster it belongs to. Clusters are disjoint
/// timestamp ranges — the units a parallel propagator can distribute and
/// the detector's conflict-partition granularity.
struct DirtyClustering {
  /// Deduplicated pending reads, sorted by start timestamp.
  std::vector<ReadNode *> Sorted;
  /// Cluster index per entry of Sorted (non-decreasing).
  std::vector<uint32_t> ClusterOf;
  uint32_t NumClusters = 0;
};

/// The detector; owned by Runtime, driven from propagate() and the
/// traced-operation hot paths (all hooks behind the single Active bool).
class RaceCheck {
public:
  /// Clusters \p Pending (any order, duplicates allowed — the dirty heap
  /// can briefly hold duplicate entries, so they are removed first) into
  /// overlap clusters of nesting [Start, End] trace intervals.
  static DirtyClustering clusterPending(Runtime &RT,
                                        std::vector<ReadNode *> Pending);
  /// Clusters the runtime's current pending dirty set.
  static DirtyClustering clusterDirty(Runtime &RT);
  /// True only while a checked propagation is running; every hook site
  /// in the runtime tests exactly this flag.
  bool Active = false;

  /// Partitions the pending dirty reads into at most \p MaxIntervals
  /// interval groups and arms the hooks. Meta state (the previous
  /// report) is replaced.
  void beginPropagate(Runtime &RT, unsigned MaxIntervals);
  /// Charges subsequent operations to the interval owning \p R; called
  /// for every dirty read popped from the propagation queue.
  void setCurrent(const ReadNode *R);
  /// Disarms the hooks; the report stays readable.
  void finishPropagate();

  /// A read was traced during re-execution.
  void onRead(const Modref *M, const ReadNode *R);
  /// A read memo-spliced (its old trace was adopted wholesale).
  void onMemoHit();
  /// A write was traced during re-execution.
  void onWrite(const Modref *M);
  /// A clean read became dirty during re-execution (cascade).
  void onInvalidate(const ReadNode *R);
  /// A read node is being revoked; drop its ownership record so a
  /// freelist reuse of the node cannot inherit a stale interval.
  void onRevokeRead(const ReadNode *R);

  const RaceReport &report() const { return Rep; }

private:
  /// Interval masks are uint32; the configured count is clamped here.
  static constexpr unsigned MaxIntervalBits = 32;

  struct Access {
    uint32_t Readers = 0;
    uint32_t Writers = 0;
  };

  void recordConflict(RaceConflict::Kind K, uint32_t Other, uintptr_t Id);

  /// Per-modifiable interval masks for the running propagation.
  std::unordered_map<const Modref *, Access> AccessMap;
  /// Which interval each pending/traced read belongs to.
  std::unordered_map<const ReadNode *, uint32_t> Owner;
  uint32_t Cur = 0;
  RaceReport Rep;
};

} // namespace ceal

#endif // CEAL_RUNTIME_RACECHECK_H
