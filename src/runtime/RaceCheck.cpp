//===- runtime/RaceCheck.cpp - Determinacy-race detector ------------------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "runtime/RaceCheck.h"

#include "runtime/Runtime.h"

#include <algorithm>

using namespace ceal;

void RaceReport::writeJson(std::ostream &Out) const {
  Out << "{\"intervals\": " << Intervals << ", \"clusters\": " << Clusters
      << ", \"initial_dirty_reads\": " << InitialDirtyReads
      << ", \"tagged_reads\": " << TaggedReads
      << ", \"tagged_writes\": " << TaggedWrites
      << ", \"tagged_memo_hits\": " << TaggedMemoHits
      << ", \"cascade_invalidations\": " << CascadeInvalidations
      << ", \"ww_conflicts\": " << WwConflicts
      << ", \"rw_conflicts\": " << RwConflicts
      << ", \"cascade_conflicts\": " << CascadeConflicts
      << ", \"partitionable\": " << (partitionable() ? "true" : "false")
      << ", \"recorded_conflicts\": [";
  for (size_t I = 0; I < Conflicts.size(); ++I) {
    const RaceConflict &C = Conflicts[I];
    Out << (I ? ", " : "") << "{\"kind\": \"" << raceConflictKindName(C.K)
        << "\", \"a\": " << C.IntervalA << ", \"b\": " << C.IntervalB
        << ", \"object\": " << C.ObjectId << "}";
  }
  Out << "]}";
}

/// Sorts the pending dirty reads by start timestamp and merges
/// overlapping read intervals into clusters. Reads whose trace intervals
/// overlap re-execute as one region (intervals nest, so an inner dirty
/// read is subsumed by the outer one's re-execution or handled inside it)
/// and must share a cluster; disjoint clusters are the units a parallel
/// propagator can distribute. Duplicate heap entries (the heap tolerates
/// them transiently — the second pop sees a clean read and skips) are
/// removed first so a read never lands in two clusters or inflates the
/// dirty count.
DirtyClustering RaceCheck::clusterPending(Runtime &RT,
                                          std::vector<ReadNode *> Pending) {
  DirtyClustering C;
  if (Pending.empty())
    return C;
  // Dedup by identity before the timestamp sort: heapLess ties on equal
  // nodes, so duplicates would otherwise stay adjacent-but-distinct and
  // double-count their interval in the overlap merge.
  std::sort(Pending.begin(), Pending.end());
  Pending.erase(std::unique(Pending.begin(), Pending.end()), Pending.end());
  std::sort(Pending.begin(), Pending.end(),
            [&RT](const ReadNode *A, const ReadNode *B) {
              return RT.heapLess(A, B);
            });

  // Cluster by interval overlap: in start order, a read whose start
  // precedes the running cluster end extends the cluster (nesting keeps
  // the end stable, but take the max defensively).
  C.ClusterOf.resize(Pending.size());
  OmNode *ClusterEnd = nullptr;
  for (size_t I = 0; I < Pending.size(); ++I) {
    OmNode *Start = RT.Om.nodeAt(Pending[I]->Start);
    OmNode *End = RT.Om.nodeAt(Pending[I]->End);
    if (!ClusterEnd || !OrderList::precedes(Start, ClusterEnd)) {
      ++C.NumClusters;
      ClusterEnd = End;
    } else if (OrderList::precedes(ClusterEnd, End)) {
      ClusterEnd = End;
    }
    C.ClusterOf[I] = C.NumClusters - 1;
  }
  C.Sorted = std::move(Pending);
  return C;
}

DirtyClustering RaceCheck::clusterDirty(Runtime &RT) {
  return clusterPending(RT, RT.Main.Heap);
}

/// Partitions the pending dirty reads into at most \p MaxIntervals
/// contiguous groups of overlap clusters (see clusterPending) and arms
/// the hooks.
void RaceCheck::beginPropagate(Runtime &RT, unsigned MaxIntervals) {
  AccessMap.clear();
  Owner.clear();
  Rep = RaceReport();
  Cur = 0;
  Active = true;

  DirtyClustering C = clusterDirty(RT);
  Rep.InitialDirtyReads = C.Sorted.size();
  if (C.Sorted.empty())
    return;
  Rep.Clusters = C.NumClusters;

  uint32_t K = std::min<uint32_t>(
      C.NumClusters, std::max(1u, std::min(MaxIntervals, MaxIntervalBits)));
  Rep.Intervals = K;
  // Contiguous balanced split: cluster c lands in group c*K/NumClusters,
  // preserving timestamp order within and across groups.
  for (size_t I = 0; I < C.Sorted.size(); ++I)
    Owner[C.Sorted[I]] =
        static_cast<uint32_t>(uint64_t(C.ClusterOf[I]) * K / C.NumClusters);
}

void RaceCheck::setCurrent(const ReadNode *R) {
  // Every popped read is either initially dirty (tagged above) or was
  // cascade-invalidated mid-propagation (tagged in onInvalidate); an
  // unknown read keeps the current interval rather than inventing one.
  auto It = Owner.find(R);
  if (It != Owner.end())
    Cur = It->second;
}

void RaceCheck::finishPropagate() {
  Active = false;
  AccessMap.clear();
  Owner.clear();
}

void RaceCheck::recordConflict(RaceConflict::Kind K, uint32_t Other,
                               uintptr_t Id) {
  switch (K) {
  case RaceConflict::WW:
    ++Rep.WwConflicts;
    break;
  case RaceConflict::RW:
    ++Rep.RwConflicts;
    break;
  case RaceConflict::CascadeInvalidate:
    ++Rep.CascadeConflicts;
    break;
  }
  if (Rep.Conflicts.size() < RaceReport::MaxRecorded)
    Rep.Conflicts.push_back({K, Cur, Other, Id});
}

/// Lowest interval index set in \p Mask (callers guarantee nonzero).
static uint32_t firstInterval(uint32_t Mask) {
  return static_cast<uint32_t>(__builtin_ctz(Mask));
}

void RaceCheck::onRead(const Modref *M, const ReadNode *R) {
  ++Rep.TaggedReads;
  (void)R; // Fresh reads enter Owner lazily, in onInvalidate (see there).
  Access &A = AccessMap[M];
  const uint32_t Bit = 1u << Cur;
  // Reading a value a foreign interval wrote: the observed value would
  // depend on whether that interval's write had landed yet.
  if (uint32_t Foreign = A.Writers & ~Bit)
    recordConflict(RaceConflict::RW, firstInterval(Foreign),
                   reinterpret_cast<uintptr_t>(M));
  A.Readers |= Bit;
}

void RaceCheck::onMemoHit() { ++Rep.TaggedMemoHits; }

void RaceCheck::onWrite(const Modref *M) {
  ++Rep.TaggedWrites;
  Access &A = AccessMap[M];
  const uint32_t Bit = 1u << Cur;
  if (uint32_t Foreign = A.Writers & ~Bit)
    recordConflict(RaceConflict::WW, firstInterval(Foreign),
                   reinterpret_cast<uintptr_t>(M));
  if (uint32_t Foreign = A.Readers & ~Bit)
    recordConflict(RaceConflict::RW, firstInterval(Foreign),
                   reinterpret_cast<uintptr_t>(M));
  A.Writers |= Bit;
}

void RaceCheck::onInvalidate(const ReadNode *R) {
  ++Rep.CascadeInvalidations;
  // Owner holds the initially-dirty partition plus reads already pulled
  // into an interval's cascade. A read absent from the map (traced at
  // construction, or fresh this propagation) simply joins the current
  // interval's cascade: its invalidating write already ran the RW mask
  // check, so cross-interval dependence through it is not lost. A read
  // *present* under another interval is a direct conflict — this
  // interval grew that interval's work list.
  auto It = Owner.find(R);
  if (It != Owner.end() && It->second != Cur)
    recordConflict(RaceConflict::CascadeInvalidate, It->second,
                   reinterpret_cast<uintptr_t>(R));
  Owner[R] = Cur;
}

void RaceCheck::onRevokeRead(const ReadNode *R) { Owner.erase(R); }
