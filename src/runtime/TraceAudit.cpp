//===- runtime/TraceAudit.cpp - Trace sanitizer ---------------------------===//
//
// The audit walks the runtime's state in five passes:
//
//   1. order structure   (groups, labels, links, two-level agreement)
//   2. trace walk        (payload back-pointers, interval nesting,
//                         closure ownership, per-node byte accounting)
//   3. use-lists + heap  (per-modifiable ordering, equality-cut
//                         soundness, dirty/queue agreement)
//   4. memo indexes      (chain shape, hash placement, exact membership)
//   5. arena             (trace-reachable + tracked meta bytes ==
//                         liveBytes)
//
// Every check records a violation string instead of asserting, so one
// corrupted structure produces a full report rather than a lone abort;
// enforce() turns a non-empty report into a banner + abort.
//
//===----------------------------------------------------------------------===//

#include "runtime/TraceAudit.h"

#include "runtime/Runtime.h"
#include "support/simd/Simd.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace ceal;

namespace {

/// Cap on recorded violations; a badly corrupted trace would otherwise
/// produce a report proportional to its size.
constexpr size_t MaxViolations = 64;

std::string formatv(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string S(Len > 0 ? static_cast<size_t>(Len) : 0, '\0');
  if (Len > 0)
    std::vsnprintf(S.data(), S.size() + 1, Fmt, Args);
  return S;
}

/// Batches memo-hash recomputation through the vectorized 32-lane hash
/// kernel. Both auditors re-derive every chained entry's hash from its
/// key — per-entry that is a serial mix chain, so the audit's dominant
/// cost on big traces is multiply latency. Entries are instead grouped
/// by key-word count; each full group of simd::HashLanes keys is
/// verified in one simd::hashBatch call over a lane-major transpose,
/// and sub-group leftovers take the scalar mixer (the same function by
/// the kernels' equivalence contract). Mismatches are collected rather
/// than reported inline — callers drain bad() after finish().
template <typename NodeT> class MemoHashBatch {
public:
  explicit MemoHashBatch(uint64_t Seed) : Seed(Seed) {}

  /// Queues \p N, whose key is the word sequence [W, W+NW). NW must be
  /// at least 1 (memo keys always lead with the closure identity).
  void add(const NodeT *N, const uint64_t *W, size_t NW) {
    Group &G = Groups[NW];
    G.Nodes.push_back(N);
    G.Words.insert(G.Words.end(), W, W + NW);
    if (G.Nodes.size() == simd::HashLanes)
      flush(NW, G);
  }

  void finish() {
    for (auto &Entry : Groups)
      flush(Entry.first, Entry.second);
  }

  const std::vector<const NodeT *> &bad() const { return Bad; }

private:
  struct Group {
    std::vector<const NodeT *> Nodes;
    std::vector<uint64_t> Words; // node-major, Nodes.size() * NW
  };

  void flush(size_t NW, Group &G) {
    constexpr size_t Lanes = simd::HashLanes;
    if (G.Nodes.size() == Lanes) {
      // Lane-major transpose: word w of key l lands at Wt[w*Lanes + l],
      // the layout the kernel consumes one 256-byte step per word.
      Wt.resize(NW * Lanes);
      for (size_t L = 0; L < Lanes; ++L)
        for (size_t W = 0; W < NW; ++W)
          Wt[W * Lanes + L] = G.Words[L * NW + W];
      uint64_t H[Lanes];
      for (uint64_t &Lane : H)
        Lane = Seed;
      simd::hashBatch(H, Wt.data(), NW);
      for (size_t L = 0; L < Lanes; ++L)
        if (static_cast<uint32_t>(H[L]) != G.Nodes[L]->Memo.Hash)
          Bad.push_back(G.Nodes[L]);
    } else {
      for (size_t I = 0; I < G.Nodes.size(); ++I) {
        uint64_t H = Seed;
        for (size_t W = 0; W < NW; ++W)
          H = hashMixWord(H, G.Words[I * NW + W]);
        if (static_cast<uint32_t>(H) != G.Nodes[I]->Memo.Hash)
          Bad.push_back(G.Nodes[I]);
      }
    }
    G.Nodes.clear();
    G.Words.clear();
  }

  uint64_t Seed;
  std::unordered_map<size_t, Group> Groups;
  std::vector<uint64_t> Wt;
  std::vector<const NodeT *> Bad;
};

/// Memo-key seeds and schemas, restated from Runtime::readMemoHash /
/// allocMemoHash on purpose: an auditor that called the production hash
/// function could not catch a bug in it.
constexpr uint64_t ReadMemoSeed = 0x51ab5eed;
constexpr uint64_t AllocMemoSeed = 0xa110c5eed;

void readMemoKey(const Modref *M, const Closure *C, std::vector<uint64_t> &W) {
  W.clear();
  W.push_back(C->identityBits());
  W.push_back(reinterpret_cast<uintptr_t>(M));
  for (size_t I = 0, N = C->numArgs(); I < N; ++I)
    W.push_back(C->args()[I]);
}

void allocMemoKey(const Closure *Init, size_t Size,
                  std::vector<uint64_t> &W) {
  W.clear();
  W.push_back(Init->identityBits());
  W.push_back(Size);
  for (size_t I = 0, N = Init->numArgs(); I < N; ++I)
    W.push_back(Init->args()[I]);
}

} // namespace

std::string TraceAudit::Report::summary() const {
  if (Violations.empty()) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "ok: %zu reads, %zu writes, %zu allocs, %zu timestamps, "
                  "%zu trace bytes",
                  Reads, Writes, Allocs, Timestamps, TraceBytes);
    return Buf;
  }
  std::string S;
  for (const std::string &V : Violations) {
    if (!S.empty())
      S += '\n';
    S += V;
  }
  return S;
}

struct TraceAudit::Impl {
  const Runtime &RT;
  TraceAudit::Report &Rep;

  // Populated by the trace walk, consumed by the later passes.
  std::unordered_set<const TraceNode *> LiveNodes;
  std::vector<const ReadNode *> Reads;
  std::vector<const WriteNode *> Writes;
  std::vector<const AllocNode *> Allocs;
  std::unordered_map<const Modref *, std::vector<const Use *>> UsesByRef;

  Impl(const Runtime &R, TraceAudit::Report &Out) : RT(R), Rep(Out) {}

  /// Decodes a trace-arena handle, bounds-checking it against the arena's
  /// bump frontier first (a corrupted handle must produce a report line,
  /// not an out-of-region dereference). Returns null for both the null
  /// handle and a failed check, so callers treat the result like the
  /// pointer it replaces.
  template <typename T> const T *decode(Handle<T> H, const char *What) {
#ifdef CEAL_WIDE_TRACE
    return H.Ptr;
#else
    if (!H.Bits)
      return nullptr;
    if (!RT.Mem.handleInBounds(H.Bits)) {
      fail("%s: handle 0x%x outside the trace arena's allocated region",
           What, H.Bits);
      return nullptr;
    }
    return RT.Mem.ptr(H);
#endif
  }

  /// Same, for timestamp handles (which resolve against the order list's
  /// own arena).
  const OmNode *omAt(Handle<OmNode> H, const char *What) {
#ifdef CEAL_WIDE_TRACE
    (void)What;
    return H.Ptr;
#else
    if (!H.Bits)
      return nullptr;
    if (!RT.Om.Allocator.handleInBounds(H.Bits)) {
      fail("%s: timestamp handle 0x%x outside the order-list arena", What,
           H.Bits);
      return nullptr;
    }
    return RT.Om.nodeAt(H);
#endif
  }

  void fail(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    if (Rep.Violations.size() >= MaxViolations)
      return;
    va_list Args;
    va_start(Args, Fmt);
    Rep.Violations.push_back(formatv(Fmt, Args));
    va_end(Args);
    if (Rep.Violations.size() == MaxViolations)
      Rep.Violations.push_back("... (further violations suppressed)");
  }

  void run() {
    if (RT.CurPhase != Runtime::Phase::Meta) {
      fail("audit invoked outside the meta phase");
      return; // The structures below are in flux mid-execution.
    }
    checkOrderStructure();
    walkTrace();
    checkUseLists();
    checkHeap();
    checkMemos();
    checkArena();
    checkRaceState();
  }

  //===------------------------------------------------------------===//
  // Pass 1: order-maintenance structure
  //===------------------------------------------------------------===//

  void checkOrderStructure() {
    const OrderList &Om = RT.Om;
    size_t SeenNodes = 0;
    const OmNode *Expected = Om.Base; // Next node the chain should yield.
    const OmGroup *PrevG = nullptr;
    for (const OmGroup *G = Om.FirstGroup; G; G = G->Next) {
      if (G->Prev != PrevG)
        fail("om: group back-link broken at label %llu",
             (unsigned long long)G->Label);
      if (PrevG && G->Label <= PrevG->Label)
        fail("om: group labels not strictly increasing (%llu after %llu)",
             (unsigned long long)G->Label, (unsigned long long)PrevG->Label);
      if (G->Count == 0) {
        fail("om: empty group left in list");
        PrevG = G;
        continue;
      }
      if (G->First != Expected)
        fail("om: group First out of sync with node chain");
      const OmNode *N = G->First;
      uint64_t PrevLabel = 0;
      for (uint32_t I = 0; N && I < G->Count; ++I) {
        if (N->Group != G)
          fail("om: node points at wrong group");
        if (I > 0 && N->Label <= PrevLabel)
          fail("om: node labels not strictly increasing within group");
        if (N->Next && N->Next->Prev != N)
          fail("om: node back-link broken");
        PrevLabel = N->Label;
        ++SeenNodes;
        Expected = N->Next;
        N = N->Next;
      }
      PrevG = G;
    }
    if (Expected != nullptr)
      fail("om: trailing nodes beyond the last group");
    if (SeenNodes != Om.Size)
      fail("om: size accounting out of sync (walked %zu, Size %zu)",
           SeenNodes, Om.Size);
    // Two-level agreement: the strict order precedes() computes from
    // (group label, node label) must match the linked-list order.
    for (const OmNode *N = Om.Base; N && N->Next; N = N->Next) {
      if (!OrderList::precedes(N, N->Next) ||
          OrderList::precedes(N->Next, N))
        fail("om: precedes() disagrees with list order (labels %llu/%llu)",
             (unsigned long long)N->Label,
             (unsigned long long)N->Next->Label);
    }
  }

  //===------------------------------------------------------------===//
  // Pass 2: trace walk
  //===------------------------------------------------------------===//

  void walkTrace() {
    std::vector<const ReadNode *> OpenReads;
    std::unordered_set<const void *> Blocks;
    const OmNode *Last = RT.Om.base();
    for (const OmNode *N = RT.Om.base()->Next; N; N = N->Next) {
      Last = N;
      OmItem Item = N->Item;
      if (!Item) {
        fail("trace: non-base timestamp with no payload");
        continue;
      }
#ifndef CEAL_WIDE_TRACE
      if (!RT.Mem.handleInBounds(Item & ~OmItemEndBit)) {
        fail("trace: timestamp payload handle 0x%x outside the trace "
             "arena's allocated region",
             unsigned(Item & ~OmItemEndBit));
        continue;
      }
#endif
      if (isEndItem(Item)) {
        const ReadNode *R = endItemRead(RT.Mem, Item);
        if (omAt(R->End, "read end") != N)
          fail("trace: end marker not pointed back at by its read");
        if (OpenReads.empty())
          fail("trace: interval end with no open read");
        else if (OpenReads.back() != R)
          fail("trace: read intervals not properly nested");
        else
          OpenReads.pop_back();
        continue;
      }
      const TraceNode *T = itemNode(RT.Mem, Item);
      if (omAt(T->Start, "node start") != N)
        fail("trace: node's Start does not point back at its timestamp");
      if (!LiveNodes.insert(T).second) {
        fail("trace: node stamped at two timestamps");
        continue;
      }
      switch (T->Kind) {
      case TraceKind::Read: {
        const auto *R = static_cast<const ReadNode *>(T);
        Reads.push_back(R);
        const Modref *M = decode(R->Ref, "read modifiable");
        if (M)
          UsesByRef[M].push_back(R);
        else
          fail("read: null modifiable");
        if (!R->End)
          fail("read: interval never closed");
        else
          OpenReads.push_back(R);
        const Closure *Clo = decode(R->Clo, "read closure");
        if (!Clo)
          fail("read: null closure");
        else if (!Clo->ownedByTrace())
          fail("read: closure not marked trace-owned");
        break;
      }
      case TraceKind::Write: {
        const auto *W = static_cast<const WriteNode *>(T);
        Writes.push_back(W);
        const Modref *M = decode(W->Ref, "write modifiable");
        if (M)
          UsesByRef[M].push_back(W);
        else
          fail("write: null modifiable");
        break;
      }
      case TraceKind::Alloc: {
        const auto *A = static_cast<const AllocNode *>(T);
        Allocs.push_back(A);
        const void *Block = decode(A->Block, "alloc block");
        if (!Block)
          fail("alloc: null block");
        else if (!Blocks.insert(Block).second)
          fail("alloc: two live allocations share one block (double "
               "steal?)");
        const Closure *Init = decode(A->Init, "alloc initializer");
        if (!Init)
          fail("alloc: null initializer closure");
        else if (!Init->ownedByTrace())
          fail("alloc: initializer not marked trace-owned");
        break;
      }
      }
    }
    if (!OpenReads.empty())
      fail("trace: %zu read interval(s) missing their end markers",
           OpenReads.size());
    if (RT.TraceEnd != Last)
      fail("trace: TraceEnd is not the maximum timestamp");
    if (!RT.Main.PendingReads.empty())
      fail("trace: pending-read stack not empty at meta time");
    if (!RT.Main.DeferredFrees.empty())
      fail("trace: deferred frees not flushed at meta time");
    Rep.Reads = Reads.size();
    Rep.Writes = Writes.size();
    Rep.Allocs = Allocs.size();
    Rep.Timestamps = RT.Om.size();
  }

  //===------------------------------------------------------------===//
  // Pass 3: use-lists and the propagation queue
  //===------------------------------------------------------------===//

  void checkUseLists() {
    for (const auto &[M, TraceUses] : UsesByRef) {
      std::unordered_set<const Use *> InList;
      const Use *Prev = nullptr;
      // Value governing the current position: the latest preceding write,
      // else the modifiable's initial value — accumulated as we walk so a
      // corrupted PrevUse chain cannot send the audit in circles. GovW is
      // the same accumulation as a node pointer, checked against each
      // read's O(1) governing-write cache (ReadNode::Gov).
      Word Governing = M->Initial;
      const WriteNode *GovW = nullptr;
      for (const Use *U = decode(M->Head, "uselist head"); U;
           U = decode(U->NextUse, "uselist next")) {
        if (!InList.insert(U).second) {
          fail("uselist: cycle in a modifiable's use list");
          break;
        }
        if (decode(U->Ref, "uselist member modifiable") != M)
          fail("uselist: member belongs to a different modifiable");
        if (!LiveNodes.count(U))
          fail("uselist: member is not a live trace node (dangling use)");
        if (decode(U->PrevUse, "uselist prev") != Prev)
          fail("uselist: PrevUse back-link broken");
        if (Prev) {
          const OmNode *PrevStart = omAt(Prev->Start, "uselist prev start");
          const OmNode *UStart = omAt(U->Start, "uselist start");
          if (!PrevStart || !UStart ||
              !OrderList::precedes(PrevStart, UStart))
            fail("uselist: uses not sorted by timestamp");
        }
        if (U->Kind == TraceKind::Read) {
          const auto *R = static_cast<const ReadNode *>(U);
          if (decode(R->Gov, "governing-write cache") != GovW)
            fail("uselist: governing-write cache out of sync (cached %p, "
                 "walk says %p)",
                 (const void *)decode(R->Gov, "governing-write cache"),
                 (const void *)GovW);
          if (!R->isDirty() && R->SeenValue != Governing)
            fail("uselist: clean read's SeenValue differs from the value "
                 "its position governs (equality cut unsound)");
        } else if (U->Kind == TraceKind::Write) {
          GovW = static_cast<const WriteNode *>(U);
          Governing = GovW->Value;
        }
        Prev = U;
      }
      if (decode(M->Tail, "uselist tail") != Prev)
        fail("uselist: Tail does not point at the last member");
      if (M->Hint && !InList.count(decode(M->Hint, "uselist hint")))
        fail("uselist: insertion hint dangles outside the use list");
      if (InList.size() != TraceUses.size())
        fail("uselist: list has %zu members but the trace has %zu uses "
             "of this modifiable",
             InList.size(), TraceUses.size());
      for (const Use *U : TraceUses)
        if (!InList.count(U))
          fail("uselist: traced use missing from its modifiable's list");
    }
  }

  void checkHeap() {
    const auto &Heap = RT.Main.Heap;
    for (size_t I = 0; I < Heap.size(); ++I) {
      const ReadNode *R = Heap[I];
      if (!LiveNodes.count(R)) {
        fail("heap: entry %zu is not a live trace node", I);
        continue;
      }
      if (R->HeapIndex != static_cast<int32_t>(I))
        fail("heap: entry %zu carries HeapIndex %d", I, R->HeapIndex);
      if (!R->isDirty())
        fail("heap: entry %zu is not dirty", I);
      if (I > 0) {
        const ReadNode *Parent = Heap[(I - 1) / 2];
        const OmNode *RStart = omAt(R->Start, "heap entry start");
        const OmNode *PStart = omAt(Parent->Start, "heap parent start");
        if (RStart && PStart && OrderList::precedes(RStart, PStart))
          fail("heap: min-heap property violated at entry %zu", I);
      }
    }
    size_t DirtyReads = 0;
    for (const ReadNode *R : Reads) {
      if (R->isDirty() != (R->HeapIndex >= 0))
        fail("read: dirty flag and queue membership disagree "
             "(dirty=%d, HeapIndex=%d)",
             int(R->isDirty()), R->HeapIndex);
      if (R->isDirty())
        ++DirtyReads;
    }
    if (DirtyReads != Heap.size())
      fail("heap: %zu dirty reads in the trace but %zu queued entries",
           DirtyReads, Heap.size());
  }

  //===------------------------------------------------------------===//
  // Pass 4: memo indexes
  //===------------------------------------------------------------===//

  template <typename NodeT, typename KeyFn>
  void checkMemoTable(const MemoTable<NodeT> &Table, const char *Name,
                      const std::vector<const NodeT *> &Expected,
                      uint64_t Seed, KeyFn MakeKey) {
    const size_t NBuckets = Table.bucketCount();
#ifndef CEAL_WIDE_TRACE
    // Vectorized pre-pass over the packed head-handle array: every head
    // is bounds-checked against the arena's bump frontier in one
    // simd::boundsCheckU32 sweep, so the chain walk below never starts
    // from a wild head. (Chain *interior* handles are still checked one
    // by one through decode(); only the dense head array has the flat
    // layout the sweep needs.)
    static_assert(sizeof(Handle<NodeT>) == sizeof(uint32_t),
                  "packed head sweep assumes compressed handles");
    const uint32_t *HeadBits =
        reinterpret_cast<const uint32_t *>(Table.bucketArray());
    const uint32_t Limit =
        uint32_t(RT.Mem.bumpUsedBytes() / Arena::HandleGrain);
    for (size_t B = 0; B < NBuckets;) {
      B += simd::boundsCheckU32(HeadBits + B, NBuckets - B, Limit);
      if (B == NBuckets)
        break;
      fail("%s memo: bucket %zu head handle 0x%x outside the trace "
           "arena's allocated region",
           Name, B, HeadBits[B]);
      ++B;
    }
    auto headOf = [&](size_t B) -> const NodeT * {
      return HeadBits[B] < Limit ? Table.bucketHead(B) : nullptr;
    };
#else
    auto headOf = [&](size_t B) { return Table.bucketHead(B); };
#endif
    MemoHashBatch<NodeT> Hashes(Seed);
    std::vector<uint64_t> Key;
    std::unordered_set<const NodeT *> InTable;
    for (size_t B = 0; B < NBuckets; ++B) {
      const NodeT *Prev = nullptr;
      for (const NodeT *N = headOf(B); N;
           N = decode(N->Memo.Next, "memo chain next")) {
        if (!InTable.insert(N).second) {
          fail("%s memo: chain cycle in bucket %zu", Name, B);
          break;
        }
        if (decode(N->Memo.Prev, "memo chain prev") != Prev)
          fail("%s memo: Memo.Prev back-link broken", Name);
        if (Table.bucketFor(N->Memo.Hash) != B)
          fail("%s memo: entry hashed to bucket %zu but chained in %zu",
               Name, Table.bucketFor(N->Memo.Hash), B);
        if (!LiveNodes.count(N)) {
          fail("%s memo: entry is not a live trace node", Name);
        } else {
          MakeKey(N, Key);
          Hashes.add(N, Key.data(), Key.size());
        }
        Prev = N;
      }
    }
    Hashes.finish();
    for (size_t I = 0; I < Hashes.bad().size(); ++I)
      fail("%s memo: stored hash does not match its key", Name);
    if (InTable.size() != Table.size())
      fail("%s memo: table Count %zu but %zu chained entries", Name,
           Table.size(), InTable.size());
    for (const NodeT *N : Expected)
      if (!InTable.count(N))
        fail("%s memo: live trace node missing from the index", Name);
    if (Expected.size() != InTable.size())
      fail("%s memo: %zu live nodes but %zu indexed entries", Name,
           Expected.size(), InTable.size());
  }

  void checkMemos() {
    checkMemoTable(RT.ReadMemo, "read", Reads, ReadMemoSeed,
                   [&](const ReadNode *R, std::vector<uint64_t> &W) {
                     readMemoKey(RT.Mem.ptr(R->Ref), RT.Mem.ptr(R->Clo), W);
                   });
    checkMemoTable(RT.AllocMemo, "alloc", Allocs, AllocMemoSeed,
                   [&](const AllocNode *A, std::vector<uint64_t> &W) {
                     allocMemoKey(RT.Mem.ptr(A->Init), A->Size, W);
                   });
  }

  //===------------------------------------------------------------===//
  // Pass 5: arena reconciliation
  //===------------------------------------------------------------===//

  void checkArena() {
    size_t Box = RT.Cfg.BoxBytesPerNode;
    size_t Bytes = 0;
    for (const ReadNode *R : Reads) {
      Bytes += Arena::accountedSize(sizeof(ReadNode) + Box);
      if (const Closure *Clo = RT.Mem.ptr(R->Clo))
        Bytes += Arena::accountedSize(Clo->byteSize());
    }
    for (const WriteNode *W : Writes) {
      (void)W;
      Bytes += Arena::accountedSize(sizeof(WriteNode) + Box);
    }
    for (const AllocNode *A : Allocs) {
      Bytes += Arena::accountedSize(sizeof(AllocNode) + Box);
      if (const Closure *Init = RT.Mem.ptr(A->Init))
        Bytes += Arena::accountedSize(Init->byteSize());
      if (A->Size)
        Bytes += Arena::accountedSize(A->Size);
    }
    Rep.TraceBytes = Bytes;
    size_t Expected = Bytes + RT.MetaBytes;
    size_t Live = RT.Mem.liveBytes();
    if (Expected != Live) {
      if (Expected < Live)
        fail("arena: %zu live bytes but only %zu reachable from the trace "
             "or tracked meta blocks (leak of %zu bytes; untracked "
             "arena().allocate()?)",
             Live, Expected, Live - Expected);
      else
        fail("arena: %zu reachable bytes exceed %zu live bytes "
             "(double free of %zu bytes)",
             Expected, Live, Expected - Live);
    }
  }

  //===------------------------------------------------------------===//
  // Pass 7: race-detector report consistency
  //===------------------------------------------------------------===//

  /// Validates the report the race detector retained from its most
  /// recent checked propagation. The detector's live side tables are
  /// torn down before the meta phase resumes, so only the report is
  /// auditable here: interval ownership must be internally consistent
  /// (every recorded conflict names two distinct, in-range interval
  /// groups; the grouping never exceeds the clustering it was cut
  /// from), and the recorded sample must agree with the tallies.
  void checkRaceState() {
    const RaceReport &R = RT.Race.report();
    if (RT.Race.Active)
      fail("race: detector still armed in the meta phase");
    if (R.Intervals > 32)
      fail("race: %u interval groups exceed the 32-bit mask width",
           unsigned(R.Intervals));
    if (R.Intervals > R.Clusters)
      fail("race: %u interval groups from only %u overlap clusters "
           "(the contiguous split can never add groups)",
           unsigned(R.Intervals), unsigned(R.Clusters));
    if (R.Clusters > R.InitialDirtyReads)
      fail("race: %u clusters from %llu initial dirty reads",
           unsigned(R.Clusters),
           static_cast<unsigned long long>(R.InitialDirtyReads));
    if (R.InitialDirtyReads && !R.Intervals)
      fail("race: dirty reads were pending but no interval was formed");
    if (R.Conflicts.size() > RaceReport::MaxRecorded)
      fail("race: %zu recorded conflicts exceed the %zu cap",
           R.Conflicts.size(), RaceReport::MaxRecorded);
    if (R.Conflicts.size() > R.conflictCount())
      fail("race: %zu conflicts recorded but only %llu tallied",
           R.Conflicts.size(),
           static_cast<unsigned long long>(R.conflictCount()));
    uint64_t CascadeTallied = 0;
    for (size_t I = 0; I < R.Conflicts.size(); ++I) {
      const RaceConflict &C = R.Conflicts[I];
      if (C.K != RaceConflict::WW && C.K != RaceConflict::RW &&
          C.K != RaceConflict::CascadeInvalidate)
        fail("race: conflict %zu has unknown kind %u", I, unsigned(C.K));
      if (C.IntervalA >= R.Intervals || C.IntervalB >= R.Intervals)
        fail("race: conflict %zu names interval %u/%u outside the %u "
             "groups",
             I, C.IntervalA, C.IntervalB, unsigned(R.Intervals));
      if (C.IntervalA == C.IntervalB)
        fail("race: conflict %zu pairs interval %u with itself "
             "(same-interval accesses are ordered by the trace)",
             I, C.IntervalA);
      CascadeTallied += C.K == RaceConflict::CascadeInvalidate;
    }
    if (CascadeTallied > R.CascadeInvalidations)
      fail("race: %llu cascade conflicts recorded but only %llu cascade "
           "invalidations observed",
           static_cast<unsigned long long>(CascadeTallied),
           static_cast<unsigned long long>(R.CascadeInvalidations));
  }
};

//===--------------------------------------------------------------------===//
// Load-mode validation (validateLoaded)
//
// A freshly loaded snapshot passed every checksum, but checksums only prove
// the file arrived intact — a crafted file checksums perfectly. This
// validator is the gate between "bytes in the arenas" and "trace the
// propagation machinery may follow": one linear sweep that treats every
// pointer, handle, and length as untrusted, bounds- and alignment-checks
// it against the serialized frontier before the first dereference, and
// stops at the first violation. It deliberately avoids the hash maps and
// cross-walks of inspect() — its cost is what bounds an mmap warm start.
//
// A per-grain mark array over the trace arena stands in for inspect()'s
// node sets: stamped-node marks catch double stamping, and memo-seen
// marks catch chain cycles and duplicate indexing, all O(1) per node.
//===--------------------------------------------------------------------===//

struct TraceAudit::LoadImpl {
  const Runtime &RT;
  TraceAudit::Report &Rep;

  const char *MemBase, *OmBase;
  uint64_t MemUsed, OmUsed;

  // One byte per trace-arena grain.
  static constexpr uint8_t MarkStamped = 1;
  static constexpr uint8_t MarkReadMemo = 2;
  static constexpr uint8_t MarkAllocMemo = 4;
  std::vector<uint8_t> Mark;

  // Collected by the order walk / trace walk.
  size_t GroupCount = 0;
  bool CursorSeen = false, TraceEndSeen = false;
  size_t NReads = 0, NWrites = 0, NAllocs = 0;
  size_t TraceBytes = 0;

  LoadImpl(const Runtime &R, TraceAudit::Report &Out)
      : RT(R), Rep(Out),
        MemBase(static_cast<const char *>(RT.Mem.regionBase())),
        OmBase(static_cast<const char *>(RT.Om.Allocator.regionBase())),
        MemUsed(RT.Mem.bumpUsedBytes()),
        OmUsed(RT.Om.Allocator.bumpUsedBytes()),
        Mark(MemUsed / Arena::HandleGrain, 0) {}

  /// Records the (single) violation; always false so checks read as
  /// `return fail(...)`.
  bool fail(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    Rep.Violations.push_back("load: " + formatv(Fmt, Args));
    va_end(Args);
    return false;
  }

  /// Wrap-safe region offset: anything below the base becomes huge and
  /// fails the bounds test instead of looking small.
  static uint64_t rawOff(const void *Base, const void *P) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(P) -
                                 reinterpret_cast<uintptr_t>(Base));
  }

  bool extentOk(uint64_t Off, uint64_t Need, uint64_t Used) const {
    return Off >= Arena::HandleGrain && Off % Arena::HandleGrain == 0 &&
           Need <= Used && Off <= Used - Need;
  }
  bool memOk(uint64_t Off, uint64_t Need) const {
    return extentOk(Off, Need, MemUsed);
  }
  bool omOk(uint64_t Off, uint64_t Need) const {
    return extentOk(Off, Need, OmUsed);
  }

  /// Trace-arena handle -> region offset (0 for null), without resolving.
  template <typename T> uint64_t hoff(Handle<T> H) const {
#ifdef CEAL_WIDE_TRACE
    return H.Ptr ? rawOff(MemBase, H.Ptr) : 0;
#else
    return uint64_t(H.Bits) * Arena::HandleGrain;
#endif
  }
  uint64_t omHoff(Handle<OmNode> H) const {
#ifdef CEAL_WIDE_TRACE
    return H.Ptr ? rawOff(OmBase, H.Ptr) : 0;
#else
    return uint64_t(H.Bits) * Arena::HandleGrain;
#endif
  }

  template <typename T> const T *memAt(uint64_t Off) const {
    return reinterpret_cast<const T *>(MemBase + Off);
  }

  bool run() {
    if (RT.CurPhase != Runtime::Phase::Meta)
      return fail("runtime not in the meta phase");
    if (!RT.Main.Heap.empty() || !RT.Main.PendingReads.empty() ||
        !RT.Main.DeferredFrees.empty() || !RT.PendingReadMemo.empty() ||
        !RT.PendingAllocMemo.empty())
      return fail("restored runtime carries pending work (corrupt scalar "
                  "state)");
    if (RT.Om.inAppendMode())
      return fail("restored order list is in append mode");
    return checkOrder() && walkTrace() && checkMemos() && checkAccounting();
  }

  //===------------------------------------------------------------===//
  // Order-maintenance chain: every group and node pointer is validated
  // before its first dereference, so the later passes may walk the node
  // chain freely.
  //===------------------------------------------------------------===//

  bool checkOrder() {
    const OrderList &Om = RT.Om;
    uint64_t BaseOff = rawOff(OmBase, Om.Base);
    if (!omOk(BaseOff, sizeof(OmNode)))
      return fail("order-list base pointer outside the serialized arena");
    uint64_t FirstGOff = rawOff(OmBase, Om.FirstGroup);
    if (!omOk(FirstGOff, sizeof(OmGroup)))
      return fail("first-group pointer outside the serialized arena");
    if (Om.FirstGroup->First != Om.Base)
      return fail("first group does not start at the base timestamp");
    if (Om.Base->Prev != nullptr)
      return fail("base timestamp has a predecessor");

    size_t SeenNodes = 0;
    const OmNode *Expected = Om.Base;
    const OmGroup *PrevG = nullptr;
    for (const OmGroup *G = Om.FirstGroup; G; G = G->Next) {
      if (!omOk(rawOff(OmBase, G), sizeof(OmGroup)))
        return fail("group pointer outside the serialized arena");
      if (++GroupCount > Om.Size + 1)
        return fail("group chain longer than the node count allows "
                    "(cycle)");
      if (G->Prev != PrevG)
        return fail("group back-link broken");
      if (PrevG && G->Label <= PrevG->Label)
        return fail("group labels not strictly increasing");
      if (G->Count == 0)
        return fail("empty group in the chain");
      if (G->First != Expected)
        return fail("group First out of sync with the node chain");
      const OmNode *N = Expected;
      uint64_t PrevLabel = 0;
      for (uint32_t I = 0; I < G->Count; ++I) {
        if (!N)
          return fail("group Count overruns the node chain");
        if (!omOk(rawOff(OmBase, N), sizeof(OmNode)))
          return fail("timestamp pointer outside the serialized arena");
        if (++SeenNodes > Om.Size)
          return fail("node chain longer than the recorded size (cycle)");
        if (N->Group != G)
          return fail("timestamp points at the wrong group");
        if (I > 0 && N->Label <= PrevLabel)
          return fail("timestamp labels not strictly increasing in group");
        if (N->Next && N->Next->Prev != N)
          return fail("timestamp back-link broken");
        if (N == RT.Main.Cursor)
          CursorSeen = true;
        if (N == RT.TraceEnd)
          TraceEndSeen = true;
        PrevLabel = N->Label;
        Expected = N->Next;
        N = N->Next;
      }
      PrevG = G;
    }
    if (Expected != nullptr)
      return fail("trailing timestamps beyond the last group");
    if (SeenNodes != Om.Size)
      return fail("walked %zu timestamps but the list records %zu",
                  SeenNodes, Om.Size);
    // The restored cursor and trace end must be *members* — a crafted
    // offset naming a freed in-bounds node would otherwise slip through.
    if (!CursorSeen)
      return fail("restored cursor is not a member of the order list");
    if (!TraceEndSeen)
      return fail("restored trace end is not a member of the order list");
    Rep.Timestamps = Om.Size;
    return true;
  }

  //===------------------------------------------------------------===//
  // Trace walk: the timestamp chain is safe now; every trace-arena
  // reference hanging off it is not, yet.
  //===------------------------------------------------------------===//

  bool checkClosure(uint64_t Off, const char *What) {
    if (!memOk(Off, sizeof(Closure)))
      return fail("%s closure outside the serialized arena", What);
    const Closure *C = memAt<Closure>(Off);
    if (!memOk(Off, Closure::byteSize(C->numArgs())))
      return fail("%s closure frame overruns the serialized arena", What);
    if (!C->ownedByTrace())
      return fail("%s closure not marked trace-owned", What);
    return true;
  }

  /// Validates one use-list link field: null, or a Use-sized extent whose
  /// opposite link points straight back.
  bool checkUseLink(uint64_t TargetOff, uint64_t SelfOff, bool TargetPrev,
                    const char *What) {
    if (!TargetOff)
      return true;
    if (!memOk(TargetOff, sizeof(Use)))
      return fail("%s link outside the serialized arena", What);
    const Use *T = memAt<Use>(TargetOff);
    uint64_t Back = hoff(TargetPrev ? T->PrevUse : T->NextUse);
    if (Back != SelfOff)
      return fail("%s link not mirrored by its target", What);
    return true;
  }

  bool stamp(uint64_t Off) {
    uint8_t &M = Mark[Off / Arena::HandleGrain];
    if (M & MarkStamped)
      return fail("trace node at offset %llu stamped at two timestamps",
                  (unsigned long long)Off);
    M |= MarkStamped;
    return true;
  }

  bool walkTrace() {
    const size_t Box = RT.Cfg.BoxBytesPerNode;
    std::vector<uint64_t> OpenReads;
    const OmNode *Last = RT.Om.base();
    for (const OmNode *N = RT.Om.base()->Next; N; N = N->Next) {
      Last = N;
      OmItem Item = N->Item;
      if (!Item)
        return fail("non-base timestamp with no payload");
#ifdef CEAL_WIDE_TRACE
      uint64_t Off = rawOff(MemBase, reinterpret_cast<const void *>(
                                         Item & ~uintptr_t(1)));
#else
      uint64_t Off = uint64_t(Item & ~OmItemEndBit) * Arena::HandleGrain;
#endif
      if (isEndItem(Item)) {
        if (!memOk(Off, sizeof(ReadNode)))
          return fail("end-marker payload outside the serialized arena");
        const ReadNode *R = memAt<ReadNode>(Off);
        if (R->Kind != TraceKind::Read)
          return fail("end marker names a non-read node");
        if (omHoff(R->End) != rawOff(OmBase, N))
          return fail("end marker not pointed back at by its read");
        if (OpenReads.empty() || OpenReads.back() != Off)
          return fail("read intervals not properly nested");
        OpenReads.pop_back();
        continue;
      }
      if (!memOk(Off, sizeof(TraceNode)))
        return fail("timestamp payload outside the serialized arena");
      const TraceNode *T = memAt<TraceNode>(Off);
      if (omHoff(T->Start) != rawOff(OmBase, N))
        return fail("node's Start does not point back at its timestamp");
      switch (T->Kind) {
      case TraceKind::Read: {
        if (!memOk(Off, sizeof(ReadNode)))
          return fail("read node overruns the serialized arena");
        if (!stamp(Off))
          return false;
        const ReadNode *R = memAt<ReadNode>(Off);
        uint64_t RefOff = hoff(R->Ref);
        if (!RefOff || !memOk(RefOff, sizeof(Modref)))
          return fail("read's modifiable outside the serialized arena");
        uint64_t CloOff = hoff(R->Clo);
        if (!CloOff || !checkClosure(CloOff, "read"))
          return CloOff ? false : fail("read with a null closure");
        if (!R->End)
          return fail("read interval never closed");
        if (R->isDirty() || R->HeapIndex != -1)
          return fail("read restored dirty or queued (snapshots are "
                      "quiescent)");
        uint64_t GovOff = hoff(R->Gov);
        if (GovOff) {
          if (!memOk(GovOff, sizeof(WriteNode)))
            return fail("governing-write cache outside the serialized "
                        "arena");
          if (memAt<WriteNode>(GovOff)->Kind != TraceKind::Write)
            return fail("governing-write cache names a non-write node");
        }
        if (!checkUseLink(hoff(R->NextUse), Off, /*TargetPrev=*/true,
                          "read's next-use") ||
            !checkUseLink(hoff(R->PrevUse), Off, /*TargetPrev=*/false,
                          "read's prev-use"))
          return false;
        OpenReads.push_back(Off);
        ++NReads;
        TraceBytes += Arena::accountedSize(sizeof(ReadNode) + Box) +
                      Arena::accountedSize(
                          memAt<Closure>(CloOff)->byteSize());
        break;
      }
      case TraceKind::Write: {
        if (!memOk(Off, sizeof(WriteNode)))
          return fail("write node overruns the serialized arena");
        if (!stamp(Off))
          return false;
        const WriteNode *W = memAt<WriteNode>(Off);
        uint64_t RefOff = hoff(W->Ref);
        if (!RefOff || !memOk(RefOff, sizeof(Modref)))
          return fail("write's modifiable outside the serialized arena");
        if (!checkUseLink(hoff(W->NextUse), Off, /*TargetPrev=*/true,
                          "write's next-use") ||
            !checkUseLink(hoff(W->PrevUse), Off, /*TargetPrev=*/false,
                          "write's prev-use"))
          return false;
        ++NWrites;
        TraceBytes += Arena::accountedSize(sizeof(WriteNode) + Box);
        break;
      }
      case TraceKind::Alloc: {
        if (!memOk(Off, sizeof(AllocNode)))
          return fail("alloc node overruns the serialized arena");
        if (!stamp(Off))
          return false;
        const AllocNode *A = memAt<AllocNode>(Off);
        uint64_t InitOff = hoff(A->Init);
        if (!InitOff || !checkClosure(InitOff, "alloc"))
          return InitOff ? false : fail("alloc with a null initializer");
        uint64_t BlockOff = hoff(A->Block);
        if (A->Size == 0)
          return fail("alloc node with a zero-sized block");
        if (!BlockOff || !memOk(BlockOff, A->Size))
          return fail("alloc block outside the serialized arena");
        ++NAllocs;
        TraceBytes += Arena::accountedSize(sizeof(AllocNode) + Box) +
                      Arena::accountedSize(
                          memAt<Closure>(InitOff)->byteSize()) +
                      Arena::accountedSize(A->Size);
        break;
      }
      default:
        return fail("trace node with invalid kind %u at offset %llu",
                    unsigned(T->Kind), (unsigned long long)Off);
      }
    }
    if (!OpenReads.empty())
      return fail("%zu read interval(s) missing their end markers",
                  OpenReads.size());
    if (RT.TraceEnd != Last)
      return fail("restored trace end is not the maximum timestamp");
    Rep.Reads = NReads;
    Rep.Writes = NWrites;
    Rep.Allocs = NAllocs;
    Rep.TraceBytes = TraceBytes;
    return true;
  }

  //===------------------------------------------------------------===//
  // Memo indexes: every chained entry must be a node the trace walk just
  // stamped (so its fields are already validated), appear exactly once,
  // sit in the bucket its hash selects, and the tables must index the
  // trace bijectively.
  //===------------------------------------------------------------===//

  template <typename NodeT, typename KeyFn>
  bool checkMemoTable(const MemoTable<NodeT> &Table, const char *Name,
                      TraceKind WantKind, uint8_t SeenBit, size_t WantCount,
                      uint64_t Seed, KeyFn MakeKey) {
    size_t Buckets = Table.bucketCount();
    if (Buckets < 64 || (Buckets & (Buckets - 1)) != 0)
      return fail("%s memo bucket count %zu invalid", Name, Buckets);
#ifndef CEAL_WIDE_TRACE
    // Vectorized head sweep: the restored bucket array is dense packed
    // u32 handles, so one simd::boundsCheckU32 pass rejects any head
    // pointing past the serialized arena before the chain walk begins.
    {
      static_assert(sizeof(Handle<NodeT>) == sizeof(uint32_t),
                    "packed head sweep assumes compressed handles");
      const uint32_t *HeadBits =
          reinterpret_cast<const uint32_t *>(Table.bucketArray());
      const uint32_t Limit = uint32_t(MemUsed / Arena::HandleGrain);
      size_t B = simd::boundsCheckU32(HeadBits, Buckets, Limit);
      if (B != Buckets)
        return fail("%s memo: bucket %zu head handle 0x%x outside the "
                    "serialized arena",
                    Name, B, HeadBits[B]);
    }
#endif
    MemoHashBatch<NodeT> Hashes(Seed);
    std::vector<uint64_t> Key;
    size_t Seen = 0;
    for (size_t B = 0; B < Buckets; ++B) {
      uint64_t PrevOff = 0;
      // bucketHead resolves the handle to an address without
      // dereferencing it; fold it back to an offset for the bounds check.
      const NodeT *Head = Table.bucketHead(B);
      uint64_t Off = Head ? rawOff(MemBase, Head) : 0;
      while (Off) {
        if (!memOk(Off, sizeof(NodeT)))
          return fail("%s memo entry outside the serialized arena", Name);
        const NodeT *E = memAt<NodeT>(Off);
        if (E->Kind != WantKind)
          return fail("%s memo entry is not a %s node", Name, Name);
        uint8_t &M = Mark[Off / Arena::HandleGrain];
        if (!(M & MarkStamped))
          return fail("%s memo entry is not a stamped trace node", Name);
        if (M & SeenBit)
          return fail("%s memo entry chained twice (cycle or duplicate)",
                      Name);
        M |= SeenBit;
        if (Table.bucketFor(E->Memo.Hash) != B)
          return fail("%s memo entry chained in the wrong bucket", Name);
        if (hoff(E->Memo.Prev) != PrevOff)
          return fail("%s memo chain back-link broken", Name);
        MakeKey(E, Key);
        Hashes.add(E, Key.data(), Key.size());
        if (++Seen > Table.size())
          return fail("%s memo chains exceed the recorded count", Name);
        PrevOff = Off;
        Off = hoff(E->Memo.Next);
      }
    }
    // Hash verification is batched through the vectorized kernel, so
    // mismatches surface here rather than mid-walk; the message (and
    // the load-abort it causes) is the same.
    Hashes.finish();
    if (!Hashes.bad().empty())
      return fail("%s memo entry's stored hash does not match its key",
                  Name);
    if (Seen != Table.size())
      return fail("%s memo records %zu entries but chains hold %zu", Name,
                  Table.size(), Seen);
    if (Seen != WantCount)
      return fail("%s memo indexes %zu entries but the trace has %zu",
                  Name, Seen, WantCount);
    return true;
  }

  bool checkMemos() {
    return checkMemoTable(RT.ReadMemo, "read", TraceKind::Read, MarkReadMemo,
                          NReads, ReadMemoSeed,
                          [&](const ReadNode *R, std::vector<uint64_t> &W) {
                            readMemoKey(RT.Mem.ptr(R->Ref),
                                        RT.Mem.ptr(R->Clo), W);
                          }) &&
           checkMemoTable(RT.AllocMemo, "alloc", TraceKind::Alloc,
                          MarkAllocMemo, NAllocs, AllocMemoSeed,
                          [&](const AllocNode *A, std::vector<uint64_t> &W) {
                            allocMemoKey(RT.Mem.ptr(A->Init), A->Size, W);
                          });
  }

  //===------------------------------------------------------------===//
  // Accounting: the restored counters must reconcile with what the walk
  // actually found, in both arenas.
  //===------------------------------------------------------------===//

  bool checkAccounting() {
    size_t Expected = TraceBytes + RT.MetaBytes;
    if (Expected != RT.Mem.liveBytes())
      return fail("trace arena records %zu live bytes but the trace "
                  "reaches %zu",
                  RT.Mem.liveBytes(), Expected);
    size_t OmExpected =
        RT.Om.Size * Arena::accountedSize(sizeof(OmNode)) +
        GroupCount * Arena::accountedSize(sizeof(OmGroup));
    if (OmExpected != RT.Om.Allocator.liveBytes())
      return fail("order arena records %zu live bytes but its structures "
                  "account for %zu",
                  RT.Om.Allocator.liveBytes(), OmExpected);
    return true;
  }
};

TraceAudit::Report TraceAudit::validateLoaded(const Runtime &RT) {
  Report Rep;
  LoadImpl(RT, Rep).run();
  return Rep;
}

TraceAudit::Report TraceAudit::inspect(const Runtime &RT) {
  Report Rep;
  Impl(RT, Rep).run();
  return Rep;
}

void TraceAudit::enforce(const Runtime &RT, const char *Where) {
  Report Rep = inspect(RT);
  if (Rep.ok())
    return;
  std::fprintf(stderr,
               "\n==== TraceAudit: %zu invariant violation(s) %s ====\n",
               Rep.Violations.size(), Where);
  for (const std::string &V : Rep.Violations)
    std::fprintf(stderr, "  %s\n", V.c_str());
  std::fprintf(stderr,
               "  (trace: %zu reads, %zu writes, %zu allocs, %zu "
               "timestamps)\n",
               Rep.Reads, Rep.Writes, Rep.Allocs, Rep.Timestamps);
  std::abort();
}
