//===- runtime/Snapshot.cpp - Versioned trace checkpoints -----------------===//
//
// Save lays the file out as a 4096-byte header block plus six contiguous
// sections (META, the two memo bucket arrays, the root table, then the
// two page-aligned arena images) and checksums every byte: the header
// block as a whole, each section over its full padded length. Load runs
// two stages: parseAndValidate() proves the file internally consistent
// without touching the runtime (so early failures leave it untouched),
// then install() claims the recorded region bases, adopts the arena
// images (copy or mmap), restores the scalar state, and hands the result
// to TraceAudit's load-mode validator before anyone trusts it. Any
// failure after the claim rewinds the runtime to a pristine empty state.
// The Verify flag (always on for load(), WarmStartOptions-governed for
// the mmap path) selects the O(file)+O(trace) content passes — arena
// section checksums and the TraceAudit walk; everything else runs
// unconditionally.
//
// The threat model for the loader is "arbitrary bytes on disk": nothing
// read from the file is dereferenced, indexed, or size-cast before a
// bounds and alignment check, and every rejection names the section and
// offset it happened at. With Verify off that guarantee covers the
// loader itself, not the propagation that follows — see
// WarmStartOptions::VerifyTrace. See Snapshot.h for the format contract.
//
//===----------------------------------------------------------------------===//

#include "runtime/Snapshot.h"

#include "runtime/Runtime.h"
#include "runtime/TraceAudit.h"
#include "support/Checksum.h"
#include "support/FileIo.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace ceal;

//===----------------------------------------------------------------------===//
// Small local helpers (no privileged access needed)
//===----------------------------------------------------------------------===//

namespace {

/// The code-address anchor. One static function stands in for "every code
/// address in this image": closures store raw function pointers (and so do
/// closure *arguments* — e.g. the map/filter/compare callbacks the list
/// cores take), which cannot be individually found and rebased, so a
/// checkpoint is only loadable when the whole image sits where the saver
/// had it. Comparing one symbol's address detects any relocation.
void snapshotAnchorSymbol() {}

uint64_t systemPageBytes() {
  long P = ::sysconf(_SC_PAGESIZE);
  return P > 0 ? static_cast<uint64_t>(P) : 4096;
}

constexpr uint64_t padTo(uint64_t V, uint64_t Align) {
  return (V + Align - 1) & ~(Align - 1);
}

bool isPow2(uint64_t V) { return V != 0 && (V & (V - 1)) == 0; }

std::string strf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));
std::string strf(const char *Fmt, ...) {
  va_list Args, Copy;
  va_start(Args, Fmt);
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string S(Len > 0 ? static_cast<size_t>(Len) : 0, '\0');
  if (Len > 0)
    std::vsnprintf(S.data(), S.size() + 1, Fmt, Args);
  va_end(Args);
  return S;
}

/// Append-only byte buffer for the small (non-arena) sections.
struct ByteBuf {
  std::vector<uint8_t> B;

  void u64(uint64_t V) { raw(&V, sizeof(V)); }
  void raw(const void *P, size_t N) {
    const auto *Q = static_cast<const uint8_t *>(P);
    B.insert(B.end(), Q, Q + N);
  }
  size_t size() const { return B.size(); }
  void padToLength(size_t Len) { B.resize(Len, 0); }
};

uint64_t byteswap64(uint64_t V) { return __builtin_bswap64(V); }

} // namespace

static_assert(sizeof(Snapshot::SectionEntry) == 32,
              "section table entry layout drifted");
static_assert(sizeof(Snapshot::FileHeader) == 304,
              "file header layout drifted");
static_assert(sizeof(Snapshot::FileHeader) <= Snapshot::HeaderBytes,
              "header must fit its block");
static_assert(sizeof(Snapshot::MetaFixed) % 8 == 0,
              "META fixed part must stay word-aligned");
static_assert(sizeof(Runtime::Stats) == 11 * sizeof(uint64_t),
              "Stats counters changed; bump the snapshot format version");

const char *Snapshot::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "Ok";
  case Status::BadState:
    return "BadState";
  case Status::IoError:
    return "IoError";
  case Status::Truncated:
    return "Truncated";
  case Status::BadMagic:
    return "BadMagic";
  case Status::BadVersion:
    return "BadVersion";
  case Status::BadEndian:
    return "BadEndian";
  case Status::BadLayout:
    return "BadLayout";
  case Status::BadHeader:
    return "BadHeader";
  case Status::BadSectionTable:
    return "BadSectionTable";
  case Status::BadSectionKind:
    return "BadSectionKind";
  case Status::BadChecksum:
    return "BadChecksum";
  case Status::BadMeta:
    return "BadMeta";
  case Status::ConfigMismatch:
    return "ConfigMismatch";
  case Status::CodeMoved:
    return "CodeMoved";
  case Status::HandleOutOfBounds:
    return "HandleOutOfBounds";
  case Status::AddressUnavailable:
    return "AddressUnavailable";
  case Status::AuditFailed:
    return "AuditFailed";
  }
  return "Unknown";
}

uint64_t Snapshot::codeAnchor() {
  return reinterpret_cast<uint64_t>(&snapshotAnchorSymbol);
}

//===----------------------------------------------------------------------===//
// Runtime::readyForCheckpoint
//===----------------------------------------------------------------------===//

bool Runtime::readyForCheckpoint(std::string *Why) const {
  auto No = [Why](const char *Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };
  if (CurPhase != Phase::Meta)
    return No("core execution or propagation in progress");
  if (!Main.Heap.empty())
    return No("pending invalidations queued (call propagate() first)");
  if (!Main.PendingReads.empty())
    return No("pending-read stack not empty");
  if (!PendingReadMemo.empty() || !PendingAllocMemo.empty())
    return No("construction memo inserts not flushed");
  if (!Main.DeferredFrees.empty())
    return No("deferred frees not flushed");
  if (Om.inAppendMode())
    return No("order list still in append mode");
  if (Oom)
    return No("runtime is out of memory");
  return true;
}

bool Snapshot::readyToSave(const Runtime &RT, std::string *Why) {
  return RT.readyForCheckpoint(Why);
}

//===----------------------------------------------------------------------===//
// Snapshot::Impl — all privileged access lives here (nested, so it
// inherits the friend grants on Runtime, Arena, OrderList, MemoTable)
//===----------------------------------------------------------------------===//

struct Snapshot::Impl {
  // Section indexes in the fixed file order.
  enum : size_t { IMeta = 0, IMemoRead, IMemoAlloc, IRoots, IMem, IOm };

  //===------------------------------------------------------------===//
  // Offset <-> pointer/handle translation (both handle widths)
  //===------------------------------------------------------------===//

  static uint64_t offOfPtr(const Arena &A, const void *P) {
    if (!P)
      return 0;
    return static_cast<uint64_t>(static_cast<const char *>(P) - A.Base);
  }

  template <typename T>
  static uint64_t offOfHandle(const Arena &A, Handle<T> H) {
#ifdef CEAL_WIDE_TRACE
    return offOfPtr(A, H.Ptr);
#else
    (void)A;
    return uint64_t(H.Bits) * Arena::HandleGrain;
#endif
  }

  template <typename T>
  static Handle<T> handleAtOff(const Arena &A, uint64_t Off) {
#ifdef CEAL_WIDE_TRACE
    return Handle<T>(Off ? reinterpret_cast<T *>(A.Base + Off) : nullptr);
#else
    (void)A;
    return Handle<T>(static_cast<uint32_t>(Off / Arena::HandleGrain));
#endif
  }

  //===------------------------------------------------------------===//
  // Save
  //===------------------------------------------------------------===//

  static void fillArenaMeta(ArenaMeta &AM, const Arena &A) {
    AM.BumpUsed = A.bumpUsedBytes();
    AM.LiveBytes = A.LiveBytes;
    AM.MaxLiveBytes = A.MaxLiveBytes;
    AM.TotalAllocated = A.TotalAllocated;
    AM.AllocCount = A.AllocCount;
    for (size_t I = 0; I < Arena::NumClasses; ++I)
      AM.FreeHeads[I] = offOfPtr(A, A.FreeLists[I]);
    AM.LargeCount = 0;
    for (const auto &[Size, Head] : A.LargeFree)
      if (Head)
        ++AM.LargeCount;
  }

  /// Appends the large-freelist (size, head-offset) pairs sorted by size
  /// so the section bytes are deterministic (unordered_map order is not).
  static void appendLargePairs(ByteBuf &Buf, const Arena &A) {
    std::vector<std::pair<uint64_t, uint64_t>> Pairs;
    for (const auto &[Size, Head] : A.LargeFree)
      if (Head)
        Pairs.emplace_back(Size, offOfPtr(A, Head));
    std::sort(Pairs.begin(), Pairs.end());
    for (const auto &[Size, Off] : Pairs) {
      Buf.u64(Size);
      Buf.u64(Off);
    }
  }

  template <typename NodeT>
  static ByteBuf memoSection(uint32_t Kind, const Arena &Mem,
                             const MemoTable<NodeT> &Table) {
    ByteBuf Buf;
    Buf.u64(sectionPreamble(Kind));
    Buf.u64(Table.Buckets.size());
    for (Handle<NodeT> H : Table.Buckets)
      Buf.u64(offOfHandle(Mem, H));
    return Buf;
  }

  static SaveResult save(const Runtime &RT, const std::string &Path,
                         const SaveOptions &Opt) {
    SaveResult R;
    auto Fail = [&R](Status St, std::string Diag) -> SaveResult & {
      R.St = St;
      R.Diagnostic = std::move(Diag);
      return R;
    };

    std::string Why;
    if (!RT.readyForCheckpoint(&Why))
      return Fail(Status::BadState, "runtime not checkpointable: " + Why);

    const Arena &Mem = RT.Mem;
    const Arena &OmA = RT.Om.Allocator;
    const uint64_t MemUsed = Mem.bumpUsedBytes();
    const uint64_t OmUsed = OmA.bumpUsedBytes();
    const uint64_t Page = systemPageBytes();

    for (size_t I = 0; I < Opt.Roots.size(); ++I) {
      uint64_t Off = offOfPtr(Mem, Opt.Roots[I]);
      if (!Opt.Roots[I] || Off < Arena::HandleGrain || Off >= MemUsed ||
          Off % Arena::HandleGrain != 0)
        return Fail(Status::BadState,
                    strf("root #%zu does not point into the runtime arena's "
                         "allocated space",
                         I));
    }

    // META section.
    MetaFixed MF = {};
    MF.CursorOff = offOfPtr(OmA, RT.Main.Cursor);
    MF.TraceEndOff = offOfPtr(OmA, RT.TraceEnd);
    std::memcpy(MF.Stats, &RT.Main.S, sizeof(MF.Stats));
    MF.MetaBytes = RT.MetaBytes;
    MF.GcAllocMark = RT.GcAllocMark;
    MF.BoxBytesPerNode = RT.Cfg.BoxBytesPerNode;
    MF.OmBaseOff = offOfPtr(OmA, RT.Om.Base);
    MF.OmFirstGroupOff = offOfPtr(OmA, RT.Om.FirstGroup);
    MF.OmSize = RT.Om.Size;
    MF.OmRelabels = RT.Om.Relabels;
    MF.OmRangeRelabels = RT.Om.RangeRelabels;
    MF.ReadMemoCount = RT.ReadMemo.Count;
    MF.ReadMemoBuckets = RT.ReadMemo.Buckets.size();
    MF.AllocMemoCount = RT.AllocMemo.Count;
    MF.AllocMemoBuckets = RT.AllocMemo.Buckets.size();
    MF.RootCount = Opt.Roots.size();
    fillArenaMeta(MF.MemA, Mem);
    fillArenaMeta(MF.OmA, OmA);

    ByteBuf Meta;
    Meta.u64(sectionPreamble(SecMeta));
    Meta.raw(&MF, sizeof(MF));
    appendLargePairs(Meta, Mem);
    appendLargePairs(Meta, OmA);

    ByteBuf MemoR = memoSection(SecMemoRead, Mem, RT.ReadMemo);
    ByteBuf MemoA = memoSection(SecMemoAlloc, Mem, RT.AllocMemo);

    ByteBuf Roots;
    Roots.u64(sectionPreamble(SecRoots));
    Roots.u64(Opt.Roots.size());
    for (const void *P : Opt.Roots)
      Roots.u64(offOfPtr(Mem, P));

    // Lay the sections out contiguously; ROOTS absorbs the padding that
    // page-aligns the arena images.
    FileHeader H = {};
    SectionEntry *SE = H.Sections;
    uint64_t Off = HeaderBytes;
    auto Place = [&](size_t Index, uint32_t Kind, uint64_t Length) {
      SE[Index].Kind = Kind;
      SE[Index].Offset = Off;
      SE[Index].Length = Length;
      Off += Length;
    };
    Place(IMeta, SecMeta, Meta.size());
    Place(IMemoRead, SecMemoRead, MemoR.size());
    Place(IMemoAlloc, SecMemoAlloc, MemoA.size());
    uint64_t RootsLen = padTo(Off + Roots.size(), Page) - Off;
    Roots.padToLength(RootsLen);
    Place(IRoots, SecRoots, RootsLen);
    Place(IMem, SecMem, padTo(MemUsed, Page));
    Place(IOm, SecOm, padTo(OmUsed, Page));
    const uint64_t FileBytes = Off;

    io::File F = io::File::createTrunc(Path);
    if (!F)
      return Fail(Status::IoError, "cannot create " + Path);

    // Small sections: write from the buffers, checksum the same bytes.
    const ByteBuf *Small[] = {&Meta, &MemoR, &MemoA, &Roots};
    for (size_t I = 0; I < 4; ++I) {
      if (!F.pwriteAll(Small[I]->B.data(), Small[I]->B.size(), SE[I].Offset))
        return Fail(Status::IoError, "write failed for " + Path);
      SE[I].Checksum = Checksum64::of(Small[I]->B.data(), Small[I]->B.size());
    }

    // Arena sections: an 8-byte kind preamble overlays region bytes
    // [0, 8) — never used by the runtime (offset 0 is the null handle) —
    // then the region image verbatim. The source region is not modified.
    auto WriteArena = [&](size_t Index, const Arena &A) -> bool {
      uint64_t Pre = sectionPreamble(SE[Index].Kind);
      uint64_t Len = SE[Index].Length;
      if (!F.pwriteAll(&Pre, sizeof(Pre), SE[Index].Offset) ||
          !F.pwriteAll(A.Base + Arena::HandleGrain, Len - Arena::HandleGrain,
                       SE[Index].Offset + Arena::HandleGrain))
        return false;
      Checksum64 C;
      C.update(&Pre, sizeof(Pre));
      C.update(A.Base + Arena::HandleGrain, Len - Arena::HandleGrain);
      SE[Index].Checksum = C.digest();
      return true;
    };
    if (!WriteArena(IMem, Mem) || !WriteArena(IOm, OmA))
      return Fail(Status::IoError, "write failed for " + Path);

    H.MagicWord = Magic;
    H.Version = FormatVersion;
    H.Endian = EndianTag;
    H.LayoutFingerprint = traceLayoutFingerprint();
    H.AnchorAddr = codeAnchor();
    H.FileBytes = FileBytes;
    H.PageBytes = Page;
    H.MemBase = reinterpret_cast<uint64_t>(Mem.Base);
    H.MemRegionBytes = Mem.RegionBytes;
    H.MemBumpUsed = MemUsed;
    H.OmBase = reinterpret_cast<uint64_t>(OmA.Base);
    H.OmRegionBytes = OmA.RegionBytes;
    H.OmBumpUsed = OmUsed;
    H.SectionCount = NumSections;

    // The header checksum covers the whole 4096-byte block (padding
    // included) with the checksum field itself zeroed, so with the
    // contiguous full-length section checksums above, every byte of the
    // file is under exactly one checksum.
    std::vector<uint8_t> Block(HeaderBytes, 0);
    H.HeaderChecksum = 0;
    std::memcpy(Block.data(), &H, sizeof(H));
    uint64_t Sum = Checksum64::of(Block.data(), Block.size());
    std::memcpy(Block.data() + offsetof(FileHeader, HeaderChecksum), &Sum,
                sizeof(Sum));
    if (!F.pwriteAll(Block.data(), Block.size(), 0))
      return Fail(Status::IoError, "write failed for " + Path);

    R.FileBytes = FileBytes;
    return R;
  }

  //===------------------------------------------------------------===//
  // Load stage 1: parse and validate without touching the runtime
  //===------------------------------------------------------------===//

  struct Parsed {
    io::File F;
    FileHeader H;
    MetaFixed MF;
    std::vector<std::pair<uint64_t, uint64_t>> MemLarge, OmLarge;
    std::vector<uint64_t> ReadBuckets, AllocBuckets, RootOffs;
  };

  static bool failL(LoadResult &Out, Status St, std::string Diag) {
    Out.St = St;
    Out.Diagnostic = std::move(Diag);
    return false;
  }

  /// Streams a section through Checksum64 without loading it whole.
  static bool checksumRange(const io::File &F, uint64_t Off, uint64_t Len,
                            uint64_t &Sum) {
    Checksum64 C;
    std::vector<uint8_t> Buf(1 << 20);
    while (Len > 0) {
      size_t N = Len < Buf.size() ? static_cast<size_t>(Len) : Buf.size();
      if (!F.preadAll(Buf.data(), N, Off))
        return false;
      C.update(Buf.data(), N);
      Off += N;
      Len -= N;
    }
    Sum = C.digest();
    return true;
  }

  static bool parseAndValidate(const Runtime &RT, const std::string &Path,
                               bool Mmap, bool Verify, Parsed &P,
                               LoadResult &Out) {
    P.F = io::File::openRead(Path);
    if (!P.F)
      return failL(Out, Status::IoError, "cannot open " + Path);
    int64_t ActualSize = P.F.size();
    if (ActualSize < 0)
      return failL(Out, Status::IoError, "cannot stat " + Path);
    if (static_cast<uint64_t>(ActualSize) < HeaderBytes)
      return failL(Out, Status::Truncated,
                   strf("file is %lld bytes, smaller than the %llu-byte "
                        "header block",
                        (long long)ActualSize, (unsigned long long)HeaderBytes));

    std::vector<uint8_t> Block(HeaderBytes);
    if (!P.F.preadAll(Block.data(), Block.size(), 0))
      return failL(Out, Status::IoError, "header read failed");
    FileHeader &H = P.H;
    std::memcpy(&H, Block.data(), sizeof(H));

    if (H.MagicWord != Magic) {
      if (H.MagicWord == byteswap64(Magic))
        return failL(Out, Status::BadEndian,
                     "snapshot written on a machine with different byte "
                     "order");
      return failL(Out, Status::BadMagic,
                   strf("not a CEAL snapshot (magic 0x%016llx)",
                        (unsigned long long)H.MagicWord));
    }
    if (H.Endian != EndianTag)
      return failL(Out, Status::BadEndian,
                   strf("endianness tag 0x%08x does not match this host",
                        H.Endian));
    if (H.Version != FormatVersion)
      return failL(Out, Status::BadVersion,
                   strf("format version %u; this build reads version %u",
                        H.Version, FormatVersion));
    uint64_t WantFp = traceLayoutFingerprint();
    if (H.LayoutFingerprint != WantFp)
      return failL(Out, Status::BadLayout,
                   strf("trace layout fingerprint 0x%016llx does not match "
                        "this build's 0x%016llx (CEAL_WIDE_TRACE or node "
                        "layout mismatch)",
                        (unsigned long long)H.LayoutFingerprint,
                        (unsigned long long)WantFp));

    // Malformed header fields (a crafted file can recompute the header
    // checksum, so these are real checks, not redundancy).
    if (!isPow2(H.PageBytes) || H.PageBytes < 512 ||
        H.PageBytes > (uint64_t(1) << 24))
      return failL(Out, Status::BadHeader,
                   strf("implausible page size %llu",
                        (unsigned long long)H.PageBytes));

    // Header block checksum: over all 4096 bytes with the field zeroed.
    uint64_t Stored = H.HeaderChecksum;
    std::memset(Block.data() + offsetof(FileHeader, HeaderChecksum), 0,
                sizeof(uint64_t));
    if (Checksum64::of(Block.data(), Block.size()) != Stored)
      return failL(Out, Status::BadHeader, "header checksum mismatch");

    if (static_cast<uint64_t>(ActualSize) < H.FileBytes)
      return failL(Out, Status::Truncated,
                   strf("file is %lld bytes but the header records %llu",
                        (long long)ActualSize,
                        (unsigned long long)H.FileBytes));
    if (static_cast<uint64_t>(ActualSize) > H.FileBytes)
      return failL(Out, Status::BadSectionTable,
                   strf("%llu trailing bytes beyond the recorded file size",
                        (unsigned long long)(ActualSize - H.FileBytes)));

    // Region geometry.
    if (H.MemRegionBytes == 0 || H.MemRegionBytes > Arena::MaxRegionBytes ||
        H.OmRegionBytes == 0 || H.OmRegionBytes > Arena::MaxRegionBytes)
      return failL(Out, Status::BadHeader, "region size out of range");
    if (H.MemBase == 0 || H.OmBase == 0 || H.MemBase % H.PageBytes != 0 ||
        H.OmBase % H.PageBytes != 0)
      return failL(Out, Status::BadHeader, "region base not page-aligned");
    if (H.MemBase + H.MemRegionBytes < H.MemBase ||
        H.OmBase + H.OmRegionBytes < H.OmBase)
      return failL(Out, Status::BadHeader, "region wraps the address space");
    bool Disjoint = H.MemBase + H.MemRegionBytes <= H.OmBase ||
                    H.OmBase + H.OmRegionBytes <= H.MemBase;
    if (!Disjoint)
      return failL(Out, Status::BadHeader, "arena regions overlap");
    if (H.MemBumpUsed < Arena::HandleGrain ||
        H.MemBumpUsed % Arena::HandleGrain != 0 ||
        H.MemBumpUsed > H.MemRegionBytes || H.OmBumpUsed < Arena::HandleGrain ||
        H.OmBumpUsed % Arena::HandleGrain != 0 ||
        H.OmBumpUsed > H.OmRegionBytes)
      return failL(Out, Status::BadHeader,
                   "arena bump frontier outside its region");

    // Section table: exact kinds in order, contiguous from the header
    // block to FileBytes, arena sections page-aligned with the lengths
    // their bump frontiers dictate.
    if (H.SectionCount != NumSections)
      return failL(Out, Status::BadSectionTable,
                   strf("section count %u, expected %u", H.SectionCount,
                        NumSections));
    static const uint32_t WantKinds[NumSections] = {
        SecMeta, SecMemoRead, SecMemoAlloc, SecRoots, SecMem, SecOm};
    uint64_t Cursor = HeaderBytes;
    for (size_t I = 0; I < NumSections; ++I) {
      const SectionEntry &E = H.Sections[I];
      if (E.Kind != WantKinds[I])
        return failL(Out, Status::BadSectionTable,
                     strf("section %zu has kind %u, expected %u", I, E.Kind,
                          WantKinds[I]));
      if (E.Offset != Cursor)
        return failL(Out, Status::BadSectionTable,
                     strf("section %zu not contiguous (offset %llu, expected "
                          "%llu)",
                          I, (unsigned long long)E.Offset,
                          (unsigned long long)Cursor));
      if (E.Length < 8 || E.Length % 8 != 0 ||
          E.Length > H.FileBytes - Cursor)
        return failL(Out, Status::BadSectionTable,
                     strf("section %zu length %llu is invalid", I,
                          (unsigned long long)E.Length));
      Cursor += E.Length;
    }
    if (Cursor != H.FileBytes)
      return failL(Out, Status::BadSectionTable,
                   "sections do not cover the file exactly");
    if (H.Sections[IMem].Offset % H.PageBytes != 0 ||
        H.Sections[IOm].Offset % H.PageBytes != 0)
      return failL(Out, Status::BadSectionTable,
                   "arena section not page-aligned");
    if (H.Sections[IMem].Length != padTo(H.MemBumpUsed, H.PageBytes) ||
        H.Sections[IOm].Length != padTo(H.OmBumpUsed, H.PageBytes))
      return failL(Out, Status::BadSectionTable,
                   "arena section length disagrees with its bump frontier");

    // Section content checksums, then the embedded kind preambles (so a
    // checksum-preserving payload swap is still caught). The fast
    // warm-start path verifies only the header (already done) and the
    // META and root sections here: the memo sections are trace-sized
    // (one word per bucket), so checksumming them would scale the warm
    // start with the trace again. Every bucket offset installed from
    // them is still bounds-checked in parseMeta either way.
    std::vector<uint8_t> Small[4];
    for (size_t I = 0; I < 4; ++I) {
      const SectionEntry &E = H.Sections[I];
      Small[I].resize(E.Length);
      if (!P.F.preadAll(Small[I].data(), E.Length, E.Offset))
        return failL(Out, Status::IoError, "section read failed");
      if (!Verify && (I == IMemoRead || I == IMemoAlloc))
        continue;
      if (Checksum64::of(Small[I].data(), E.Length) != E.Checksum)
        return failL(Out, Status::BadChecksum,
                     strf("section %zu checksum mismatch", I));
    }
    // The arena payloads are the O(file) part; the fast warm-start path
    // skips their content checksums by contract (WarmStartOptions) —
    // their geometry, preambles, and every offset installed from them
    // are still checked below.
    if (Verify)
      for (size_t I : {IMem, IOm}) {
        uint64_t Sum = 0;
        if (!checksumRange(P.F, H.Sections[I].Offset, H.Sections[I].Length,
                           Sum))
          return failL(Out, Status::IoError, "section read failed");
        if (Sum != H.Sections[I].Checksum)
          return failL(Out, Status::BadChecksum,
                       strf("section %zu checksum mismatch", I));
      }
    for (size_t I = 0; I < NumSections; ++I) {
      uint64_t Pre = 0;
      if (I < 4)
        std::memcpy(&Pre, Small[I].data(), sizeof(Pre));
      else if (!P.F.preadAll(&Pre, sizeof(Pre), H.Sections[I].Offset))
        return failL(Out, Status::IoError, "section read failed");
      if (Pre != sectionPreamble(H.Sections[I].Kind))
        return failL(Out, Status::BadSectionKind,
                     strf("section %zu payload carries the wrong kind tag "
                          "(swapped payloads?)",
                          I));
    }

    return parseMeta(RT, Mmap, Small, P, Out);
  }

  /// META/memo/roots parsing + semantic validation (file still the only
  /// thing touched; the runtime is read for config comparison only).
  static bool parseMeta(const Runtime &RT, bool Mmap,
                        const std::vector<uint8_t> Small[4], Parsed &P,
                        LoadResult &Out) {
    const FileHeader &H = P.H;
    MetaFixed &MF = P.MF;
    const std::vector<uint8_t> &Meta = Small[IMeta];
    if (Meta.size() < 8 + sizeof(MetaFixed))
      return failL(Out, Status::BadMeta, "META section too short");
    std::memcpy(&MF, Meta.data() + 8, sizeof(MF));

    // Cross-checks between the header and META copies of the frontier.
    if (MF.MemA.BumpUsed != H.MemBumpUsed || MF.OmA.BumpUsed != H.OmBumpUsed)
      return failL(Out, Status::BadMeta,
                   "META arena frontier disagrees with the header");

    // Large-freelist pairs (Mem's, then Om's). Check each count against
    // the tail capacity separately — the counts are untrusted uint64s and
    // summing them first can wrap past the bound.
    uint64_t PairCap = (Meta.size() - 8 - sizeof(MetaFixed)) / 16;
    if (MF.MemA.LargeCount > PairCap ||
        MF.OmA.LargeCount > PairCap - MF.MemA.LargeCount)
      return failL(Out, Status::BadMeta,
                   "META large-freelist table exceeds its section");
    const uint8_t *Tail = Meta.data() + 8 + sizeof(MetaFixed);
    auto ReadPairs = [&Tail](std::vector<std::pair<uint64_t, uint64_t>> &Dst,
                             uint64_t N) {
      for (uint64_t I = 0; I < N; ++I) {
        uint64_t Size, Off;
        std::memcpy(&Size, Tail, 8);
        std::memcpy(&Off, Tail + 8, 8);
        Tail += 16;
        Dst.emplace_back(Size, Off);
      }
    };
    ReadPairs(P.MemLarge, MF.MemA.LargeCount);
    ReadPairs(P.OmLarge, MF.OmA.LargeCount);

    // Every offset the loader will turn into a pointer gets bounds- and
    // alignment-checked against the serialized frontier it indexes.
    auto OffOk = [](uint64_t Off, uint64_t Need, uint64_t Used) {
      return Off >= Arena::HandleGrain && Off % Arena::HandleGrain == 0 &&
             Need <= Used && Off <= Used - Need;
    };
    auto BadOff = [&Out](const char *What, uint64_t Off) {
      return failL(Out, Status::HandleOutOfBounds,
                   strf("%s offset %llu points outside the serialized arena",
                        What, (unsigned long long)Off));
    };
    if (!OffOk(MF.CursorOff, sizeof(OmNode), H.OmBumpUsed))
      return BadOff("cursor timestamp", MF.CursorOff);
    if (!OffOk(MF.TraceEndOff, sizeof(OmNode), H.OmBumpUsed))
      return BadOff("trace-end timestamp", MF.TraceEndOff);
    if (!OffOk(MF.OmBaseOff, sizeof(OmNode), H.OmBumpUsed))
      return BadOff("order-list base", MF.OmBaseOff);
    if (!OffOk(MF.OmFirstGroupOff, sizeof(OmGroup), H.OmBumpUsed))
      return BadOff("order-list first group", MF.OmFirstGroupOff);
    if (MF.OmSize == 0 || MF.OmSize > H.OmBumpUsed / sizeof(OmNode) + 1)
      return failL(Out, Status::BadMeta,
                   strf("order-list size %llu impossible for a %llu-byte "
                        "arena",
                        (unsigned long long)MF.OmSize,
                        (unsigned long long)H.OmBumpUsed));
    for (size_t I = 0; I < Arena::NumClasses; ++I) {
      if (MF.MemA.FreeHeads[I] &&
          !OffOk(MF.MemA.FreeHeads[I], Arena::classSize(I), H.MemBumpUsed))
        return BadOff("trace-arena freelist head", MF.MemA.FreeHeads[I]);
      if (MF.OmA.FreeHeads[I] &&
          !OffOk(MF.OmA.FreeHeads[I], Arena::classSize(I), H.OmBumpUsed))
        return BadOff("order-arena freelist head", MF.OmA.FreeHeads[I]);
    }
    auto CheckLarge =
        [&](const std::vector<std::pair<uint64_t, uint64_t>> &Pairs,
            uint64_t Used, const char *What) {
          uint64_t PrevSize = 0;
          for (const auto &[Size, Off] : Pairs) {
            if (Size <= Arena::MaxSmallSize || Size % Arena::HandleGrain ||
                Size <= PrevSize)
              return failL(Out, Status::BadMeta,
                           strf("%s large-freelist table malformed", What));
            if (!Off || !OffOk(Off, Size, Used))
              return BadOff(What, Off);
            PrevSize = Size;
          }
          return true;
        };
    if (!CheckLarge(P.MemLarge, H.MemBumpUsed, "trace-arena") ||
        !CheckLarge(P.OmLarge, H.OmBumpUsed, "order-arena"))
      return false;

    // Memo bucket arrays.
    auto ParseMemo = [&](size_t Index, uint64_t WantBuckets, uint64_t Count,
                         uint64_t NodeBytes, std::vector<uint64_t> &Dst,
                         const char *Name) {
      const std::vector<uint8_t> &Sec = Small[Index];
      if (!isPow2(WantBuckets) || WantBuckets < 64 ||
          WantBuckets > (uint64_t(1) << 31))
        return failL(Out, Status::BadMeta,
                     strf("%s memo bucket count %llu invalid", Name,
                          (unsigned long long)WantBuckets));
      if (Count > H.MemBumpUsed / NodeBytes)
        return failL(Out, Status::BadMeta,
                     strf("%s memo count exceeds the arena's capacity", Name));
      if (Sec.size() < 16 || (Sec.size() - 16) / 8 < WantBuckets)
        return failL(Out, Status::BadMeta,
                     strf("%s memo section too short for its buckets", Name));
      uint64_t Stored;
      std::memcpy(&Stored, Sec.data() + 8, 8);
      if (Stored != WantBuckets)
        return failL(Out, Status::BadMeta,
                     strf("%s memo bucket count disagrees with META", Name));
      Dst.resize(WantBuckets);
      std::memcpy(Dst.data(), Sec.data() + 16, WantBuckets * 8);
      for (uint64_t Off : Dst)
        if (Off && !OffOk(Off, NodeBytes, H.MemBumpUsed))
          return BadOff("memo bucket", Off);
      return true;
    };
    if (!ParseMemo(IMemoRead, MF.ReadMemoBuckets, MF.ReadMemoCount,
                   sizeof(ReadNode), P.ReadBuckets, "read") ||
        !ParseMemo(IMemoAlloc, MF.AllocMemoBuckets, MF.AllocMemoCount,
                   sizeof(AllocNode), P.AllocBuckets, "alloc"))
      return false;

    // Root table.
    const std::vector<uint8_t> &RootsSec = Small[IRoots];
    if (RootsSec.size() < 16 || (RootsSec.size() - 16) / 8 < MF.RootCount)
      return failL(Out, Status::BadMeta,
                   "root section too short for its count");
    uint64_t StoredRoots;
    std::memcpy(&StoredRoots, RootsSec.data() + 8, 8);
    if (StoredRoots != MF.RootCount)
      return failL(Out, Status::BadMeta,
                   "root count disagrees between META and the root section");
    P.RootOffs.resize(MF.RootCount);
    std::memcpy(P.RootOffs.data(), RootsSec.data() + 16, MF.RootCount * 8);
    for (uint64_t Off : P.RootOffs)
      if (!OffOk(Off, Arena::HandleGrain, H.MemBumpUsed))
        return BadOff("root", Off);

    // Environment compatibility, last: everything about the *file* is
    // now known-consistent, so these name the actual incompatibility.
    if (H.AnchorAddr != codeAnchor())
      return failL(Out, Status::CodeMoved,
                   strf("code anchor moved (saved 0x%llx, this process "
                        "0x%llx); load from the same binary with ASLR "
                        "disabled",
                        (unsigned long long)H.AnchorAddr,
                        (unsigned long long)codeAnchor()));
    if (MF.BoxBytesPerNode != RT.Cfg.BoxBytesPerNode)
      return failL(Out, Status::ConfigMismatch,
                   strf("checkpoint used BoxBytesPerNode=%llu, runtime has "
                        "%u",
                        (unsigned long long)MF.BoxBytesPerNode,
                        RT.Cfg.BoxBytesPerNode));
    if (Mmap && H.PageBytes != systemPageBytes())
      return failL(Out, Status::BadMeta,
                   strf("saved with %llu-byte pages, this host has %llu "
                        "(use the copying load path)",
                        (unsigned long long)H.PageBytes,
                        (unsigned long long)systemPageBytes()));
    return true;
  }

  //===------------------------------------------------------------===//
  // Load stage 2: install into the runtime
  //===------------------------------------------------------------===//

  /// Rewinds a runtime whose install failed partway back to the pristine
  /// empty state a fresh Runtime has: both regions are dropped and
  /// re-claimed anonymously at their current bases (guaranteed free once
  /// our own mappings are gone), the order list is rebuilt, and every
  /// scalar is reset. A failed load is therefore always recoverable —
  /// the runtime can run cores again or retry a different checkpoint.
  static void resetToPristine(Runtime &RT) {
    RT.Mem.remapTo(RT.Mem.Base, RT.Mem.RegionBytes);
    RT.Om.Allocator.remapTo(RT.Om.Allocator.Base, RT.Om.Allocator.RegionBytes);
    RT.Om.rebuildEmpty();
    RT.Main.Cursor = RT.TraceEnd = RT.Om.base();
    RT.Main.IntervalEnd = nullptr;
    RT.Main.PendingSubst = 0;
    RT.Main.SplicedFlag = false;
    RT.CurPhase = Runtime::Phase::Meta;
    RT.Main.PendingReads.clear();
    RT.Main.Heap.clear();
    RT.PendingReadMemo.clear();
    RT.PendingAllocMemo.clear();
    RT.Main.DeferredFrees.clear();
    RT.ReadMemo.Buckets.assign(64, Handle<ReadNode>{});
    RT.ReadMemo.Count = 0;
    RT.AllocMemo.Buckets.assign(64, Handle<AllocNode>{});
    RT.AllocMemo.Count = 0;
    RT.Main.S = Runtime::Stats();
    RT.MetaBytes = 0;
    RT.GcAllocMark = 0;
    RT.Oom = false;
  }

  /// Walks one serialized freelist chain, rejecting any cell outside
  /// [grain, frontier) bounds or off the 8-byte grid, and any chain
  /// longer than the arena could hold (a cycle). The chain links are raw
  /// pointers inside the freshly adopted image, so this must run before
  /// the arena is allowed to pop them.
  static bool checkFreeChain(const Arena &A, uint64_t HeadOff,
                             uint64_t CellBytes, uint64_t Used,
                             const char *Name, LoadResult &Out) {
    uint64_t Off = HeadOff;
    uint64_t Steps = 0;
    const uint64_t Cap = Used / Arena::HandleGrain + 2;
    while (Off != 0) {
      if (Off < Arena::HandleGrain || Off % Arena::HandleGrain != 0 ||
          CellBytes > Used || Off > Used - CellBytes)
        return failL(Out, Status::HandleOutOfBounds,
                     strf("%s freelist cell at offset %llu outside the "
                          "serialized arena",
                          Name, (unsigned long long)Off));
      if (++Steps > Cap)
        return failL(Out, Status::AuditFailed,
                     strf("%s freelist chain does not terminate (cycle)",
                          Name));
      const void *Next;
      std::memcpy(&Next, A.Base + Off, sizeof(Next));
      Off = Next ? static_cast<uint64_t>(
                       reinterpret_cast<uintptr_t>(Next) -
                       reinterpret_cast<uintptr_t>(A.Base))
                 : 0;
    }
    return true;
  }

  static bool restoreArena(Arena &A, const ArenaMeta &AM, uint64_t Used,
                           const std::vector<std::pair<uint64_t, uint64_t>>
                               &Large,
                           bool Verify, const char *Name, LoadResult &Out) {
    A.BumpPtr = A.Base + Used;
    A.LiveBytes = AM.LiveBytes;
    A.MaxLiveBytes = AM.MaxLiveBytes;
    A.TotalAllocated = AM.TotalAllocated;
    A.AllocCount = AM.AllocCount;
    // The chain *heads* were bounds-checked in parseMeta; the chains
    // themselves are arena payload, so on the fast warm-start path they
    // are adopted unwalked (the walk would fault in a page per scattered
    // free cell — the single largest cost of a warm start — to check
    // bytes the contract already trusts).
    for (size_t I = 0; I < Arena::NumClasses; ++I) {
      uint64_t HeadOff = AM.FreeHeads[I];
      if (Verify &&
          !checkFreeChain(A, HeadOff, Arena::classSize(I), Used, Name, Out))
        return false;
      A.FreeLists[I] =
          HeadOff ? reinterpret_cast<Arena::FreeCell *>(A.Base + HeadOff)
                  : nullptr;
    }
    A.LargeFree.clear();
    for (const auto &[Size, HeadOff] : Large) {
      if (Verify && !checkFreeChain(A, HeadOff, Size, Used, Name, Out))
        return false;
      A.LargeFree[Size] = reinterpret_cast<Arena::FreeCell *>(A.Base + HeadOff);
    }
    return true;
  }

  template <typename NodeT>
  static void restoreMemo(MemoTable<NodeT> &Table, const Arena &Mem,
                          const std::vector<uint64_t> &Offsets,
                          uint64_t Count) {
    Table.Buckets.assign(Offsets.size(), Handle<NodeT>{});
    for (size_t I = 0; I < Offsets.size(); ++I)
      Table.Buckets[I] = handleAtOff<NodeT>(Mem, Offsets[I]);
    Table.Count = static_cast<size_t>(Count);
  }

  static bool install(Runtime &RT, Parsed &P, bool Mmap, bool Verify,
                      LoadResult &Out) {
    const FileHeader &H = P.H;
    if (RT.CurPhase != Runtime::Phase::Meta || RT.Om.size() != 1 ||
        RT.Mem.allocationCount() != 0 || RT.Mem.liveBytes() != 0)
      return failL(Out, Status::BadState,
                   "load requires a pristine runtime (fresh, no trace)");

    // Claim the recorded bases. The claims are atomic (nothing foreign is
    // clobbered); the one retry covers the case where this runtime's own
    // other region sat on a target and has since been moved off it.
    char *MemWant = reinterpret_cast<char *>(H.MemBase);
    char *OmWant = reinterpret_cast<char *>(H.OmBase);
    bool MemOk = RT.Mem.remapTo(MemWant, H.MemRegionBytes);
    bool OmOk = RT.Om.Allocator.remapTo(OmWant, H.OmRegionBytes);
    if (!MemOk)
      MemOk = RT.Mem.remapTo(MemWant, H.MemRegionBytes);
    if (!MemOk || !OmOk) {
      resetToPristine(RT);
      return failL(Out, Status::AddressUnavailable,
                   strf("cannot claim the recorded region bases %p/%p "
                        "(address space occupied; load in a fresh process, "
                        "with ASLR disabled for cross-process use)",
                        (void *)MemWant, (void *)OmWant));
    }

    // Adopt the arena images. The copy path reads past the 8-byte kind
    // preamble so region bytes [0, 8) stay zero; the mmap path maps the
    // whole page-aligned section copy-on-write (the preamble lands in the
    // never-used first grain).
    bool ContentOk;
    if (Mmap) {
      ContentOk = RT.Mem.mapFilePrefix(P.F.fd(), H.Sections[IMem].Offset,
                                       H.Sections[IMem].Length) &&
                  RT.Om.Allocator.mapFilePrefix(
                      P.F.fd(), H.Sections[IOm].Offset,
                      H.Sections[IOm].Length);
    } else {
      ContentOk =
          (H.MemBumpUsed == Arena::HandleGrain ||
           P.F.preadAll(RT.Mem.Base + Arena::HandleGrain,
                        H.MemBumpUsed - Arena::HandleGrain,
                        H.Sections[IMem].Offset + Arena::HandleGrain)) &&
          (H.OmBumpUsed == Arena::HandleGrain ||
           P.F.preadAll(RT.Om.Allocator.Base + Arena::HandleGrain,
                        H.OmBumpUsed - Arena::HandleGrain,
                        H.Sections[IOm].Offset + Arena::HandleGrain));
    }
    if (!ContentOk) {
      resetToPristine(RT);
      return failL(Out, Status::IoError,
                   "reading the arena images into the region failed");
    }

    if (!restoreArena(RT.Mem, P.MF.MemA, H.MemBumpUsed, P.MemLarge, Verify,
                      "trace-arena", Out) ||
        !restoreArena(RT.Om.Allocator, P.MF.OmA, H.OmBumpUsed, P.OmLarge,
                      Verify, "order-arena", Out)) {
      resetToPristine(RT);
      return false;
    }

    OrderList &Om = RT.Om;
    char *OmB = Om.Allocator.Base;
    Om.Base = reinterpret_cast<OmNode *>(OmB + P.MF.OmBaseOff);
    Om.FirstGroup = reinterpret_cast<OmGroup *>(OmB + P.MF.OmFirstGroupOff);
    Om.Size = static_cast<size_t>(P.MF.OmSize);
    Om.Relabels = static_cast<size_t>(P.MF.OmRelabels);
    Om.RangeRelabels = static_cast<size_t>(P.MF.OmRangeRelabels);
    Om.FillLimit = OrderList::GroupLimit;
    Om.AppendActive = false;

    RT.Main.Cursor = reinterpret_cast<OmNode *>(OmB + P.MF.CursorOff);
    RT.TraceEnd = reinterpret_cast<OmNode *>(OmB + P.MF.TraceEndOff);
    RT.Main.IntervalEnd = nullptr;
    RT.Main.PendingSubst = 0;
    RT.Main.SplicedFlag = false;
    RT.CurPhase = Runtime::Phase::Meta;
    RT.Main.PendingReads.clear();
    RT.Main.Heap.clear();
    RT.PendingReadMemo.clear();
    RT.PendingAllocMemo.clear();
    RT.Main.DeferredFrees.clear();
    std::memcpy(&RT.Main.S, P.MF.Stats, sizeof(RT.Main.S));
    RT.MetaBytes = static_cast<size_t>(P.MF.MetaBytes);
    RT.GcAllocMark = static_cast<size_t>(P.MF.GcAllocMark);
    RT.Oom = false;

    restoreMemo(RT.ReadMemo, RT.Mem, P.ReadBuckets, P.MF.ReadMemoCount);
    restoreMemo(RT.AllocMemo, RT.Mem, P.AllocBuckets, P.MF.AllocMemoCount);

    Out.Roots.reserve(P.RootOffs.size());
    for (uint64_t Off : P.RootOffs)
      Out.Roots.push_back(RT.Mem.Base + Off);

    // Untrusted-file validation: the linear TraceAudit load mode, plus
    // the full sanitizer on the safe copying path. The fast warm-start
    // path (Verify off) skips this O(trace) walk by contract — the
    // scalar state installed above was bounds-checked piece by piece, so
    // the *loader* cannot have faulted, and what remains unverified is
    // the mapped trace payload itself (WarmStartOptions::VerifyTrace
    // documents the trade).
    if (Verify) {
      TraceAudit::Report Rep = TraceAudit::validateLoaded(RT);
      if (Rep.ok() && !Mmap)
        Rep = TraceAudit::inspect(RT);
      if (!Rep.ok()) {
        resetToPristine(RT);
        Out.Roots.clear();
        return failL(Out, Status::AuditFailed,
                     "loaded trace failed validation:\n" + Rep.summary());
      }
    }
    return true;
  }

  static LoadResult load(Runtime &RT, const std::string &Path, bool Mmap,
                         bool Verify) {
    LoadResult Out;
    Parsed P;
    if (!parseAndValidate(RT, Path, Mmap, Verify, P, Out))
      return Out;
    install(RT, P, Mmap, Verify, Out);
    // The fd may close now even on the mmap path: MAP_PRIVATE mappings
    // keep their file reference after close (and after unlink).
    return Out;
  }

  //===------------------------------------------------------------===//
  // Trace shape digest
  //===------------------------------------------------------------===//

  static uint64_t digest(const Runtime &RT) {
    checkAlways(RT.CurPhase == Runtime::Phase::Meta,
                "traceShapeDigest outside the meta phase");
    const uint64_t RegionBase = reinterpret_cast<uint64_t>(RT.Mem.Base);
    const uint64_t Region = RT.Mem.RegionBytes;
    uint64_t H = 0x4345414c53484150ULL;
    auto MixRaw = [&H](uint64_t W) { H = hashMixWord(H, W); };
    // Word values routinely hold arena pointers (list cells, modrefs,
    // blocks). Raw addresses differ between runtimes at different region
    // bases, and raw *offsets* differ when equivalent traces placed
    // their blocks differently — sequential propagation allocates from
    // the central freelists in global time order, a parallel phase from
    // per-worker shard chunks, yet both reach observationally identical
    // traces. Addresses are opaque identities to core code (only
    // equality is observable), so the digest is made placement-abstract:
    // each distinct in-region value is renamed to its first-occurrence
    // ordinal in trace order. Two digests agree iff the traces match up
    // to a bijection of block addresses — exactly observational
    // equivalence, and the property the parallel-vs-sequential oracle
    // (tests/ParallelPropagateTest) asserts.
    std::unordered_map<uint64_t, uint64_t> Names;
    auto MixVal = [&](Word W) {
      if (W >= RegionBase && W - RegionBase < Region) {
        auto It = Names.try_emplace(W - RegionBase, Names.size()).first;
        MixRaw(1);
        MixRaw(It->second);
      } else {
        MixRaw(0);
        MixRaw(W);
      }
    };
    auto MixClosure = [&](const Closure *C) {
      MixRaw(C->identityBits());
      for (size_t I = 0, N = C->numArgs(); I < N; ++I)
        MixVal(C->args()[I]);
    };
    for (const OmNode *N = RT.Om.base()->Next; N; N = N->Next) {
      OmItem Item = N->Item;
      if (isEndItem(Item)) {
        MixRaw(2);
        continue;
      }
      const TraceNode *T = itemNode(RT.Mem, Item);
      MixRaw(3);
      MixRaw(static_cast<uint64_t>(T->Kind));
      MixRaw(T->Flags);
      switch (T->Kind) {
      case TraceKind::Read: {
        const auto *R = static_cast<const ReadNode *>(T);
        MixVal(toWord(RT.Mem.ptr(R->Ref)));
        MixVal(R->SeenValue);
        MixClosure(RT.Mem.ptr(R->Clo));
        break;
      }
      case TraceKind::Write: {
        const auto *W = static_cast<const WriteNode *>(T);
        MixVal(toWord(RT.Mem.ptr(W->Ref)));
        MixVal(W->Value);
        break;
      }
      case TraceKind::Alloc: {
        const auto *A = static_cast<const AllocNode *>(T);
        MixVal(toWord(RT.Mem.ptr(A->Block)));
        MixRaw(A->Size);
        MixClosure(RT.Mem.ptr(A->Init));
        break;
      }
      }
    }
    return H;
  }
};

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

Snapshot::SaveResult Snapshot::save(const Runtime &RT, const std::string &Path,
                                    const SaveOptions &Opt) {
  return Impl::save(RT, Path, Opt);
}

Snapshot::LoadResult Snapshot::load(Runtime &RT, const std::string &Path) {
  return Impl::load(RT, Path, /*Mmap=*/false, /*Verify=*/true);
}

Snapshot::LoadResult Snapshot::mmapWarmStart(Runtime &RT,
                                             const std::string &Path) {
  return mmapWarmStart(RT, Path, WarmStartOptions());
}

Snapshot::LoadResult Snapshot::mmapWarmStart(Runtime &RT,
                                             const std::string &Path,
                                             const WarmStartOptions &Opt) {
  return Impl::load(RT, Path, /*Mmap=*/true, Opt.VerifyTrace);
}

uint64_t Snapshot::traceShapeDigest(const Runtime &RT) {
  return Impl::digest(RT);
}
