//===- runtime/Trace.h - Trace nodes and modifiables ------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic dependence graph. Every traced action of a core execution
/// owns a node: reads (with their re-executable closure and time
/// interval), writes (imperative multi-write modifiables in the style of
/// Acar et al., POPL 2008), and memo-keyed allocations (Hammer and Acar,
/// ISMM 2008). Nodes are threaded through the order-maintenance list so a
/// time interval can be enumerated and revoked, and reads/writes of one
/// modifiable form a per-modifiable list in timestamp order so a write can
/// invalidate exactly the readers it governs.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_TRACE_H
#define CEAL_RUNTIME_TRACE_H

#include "om/OrderList.h"
#include "runtime/Closure.h"
#include "runtime/Word.h"

#include <cstdint>

namespace ceal {

struct Modref;
struct WriteNode;

enum class TraceKind : uint8_t {
  Read,
  Write,
  Alloc,
};

/// Base of all trace nodes. Start is the node's timestamp; its OmNode's
/// Item pointer refers back to this node (reads additionally tag their end
/// timestamp, see ReadNode::End).
struct TraceNode {
  TraceKind Kind;
  uint8_t Flags;
  /// Position in the propagation queue, or -1. Meaningful for reads
  /// only, but stored in the base's padding bytes so ReadNode stays
  /// within the arena's 96-byte size class (the governing-write cache
  /// below would otherwise push it into the next class — a 17% size tax
  /// on the most numerous trace node).
  int32_t HeapIndex;
  OmNode *Start;

  /// Tag for Runtime::newNode: skip zero-initializing the fields the
  /// tracing hot paths overwrite unconditionally before anything reads
  /// them (every trace node is stamped, linked, and memo-keyed in the
  /// same traced operation that creates it). Kind, Flags, and HeapIndex
  /// are still initialized — the dirty bit and queue position must start
  /// clear no matter who allocates.
  struct RawInit {};

  explicit TraceNode(TraceKind K)
      : Kind(K), Flags(0), HeapIndex(-1), Start(nullptr) {}
  TraceNode(TraceKind K, RawInit) : Kind(K), Flags(0), HeapIndex(-1) {}
};

/// Base of per-modifiable uses (reads and writes), linked in time order.
struct Use : TraceNode {
  Modref *Ref;
  Use *PrevUse;
  Use *NextUse;

  explicit Use(TraceKind K)
      : TraceNode(K), Ref(nullptr), PrevUse(nullptr), NextUse(nullptr) {}
  Use(TraceKind K, RawInit R) : TraceNode(K, R) {}
};

/// A traced read: the modifiable, the closure that consumed the value, the
/// value it saw, and the time interval its body occupied. The interval's
/// end is the point where the enclosing tail-call chain finished; during
/// change propagation the closure re-executes inside (Start, End).
struct ReadNode : Use {
  ReadNode()
      : Use(TraceKind::Read), Clo(nullptr), SeenValue(0), End(nullptr),
        Gov(nullptr), MemoNext(nullptr), MemoPrev(nullptr), MemoHash(0) {}
  explicit ReadNode(RawInit R) : Use(TraceKind::Read, R) {}

  static constexpr uint8_t FlagDirty = 1;

  Closure *Clo;
  Word SeenValue;
  OmNode *End;
  /// Governing-write cache: the latest write strictly preceding this read
  /// in its modifiable's use list — the write whose value the read
  /// observes — or null when the prefix holds no write (the read is
  /// governed by Modref::Initial). Maintained by Runtime::insertUse /
  /// write / revokeWrite so valueGoverning is O(1) instead of
  /// O(reads since the last write); audited against a full backward walk
  /// by TraceAudit. Only reads carry the cache: a write's governing write
  /// is derived in O(1) from its predecessor (Runtime::writeGoverning),
  /// which keeps WriteNode inside the 48-byte size class.
  WriteNode *Gov;

  /// Memo-table chaining (keyed by modifiable, function, argument words).
  ReadNode *MemoNext;
  ReadNode *MemoPrev;
  uint64_t MemoHash;

  bool isDirty() const { return Flags & FlagDirty; }
  void setDirty(bool D) {
    Flags = D ? (Flags | FlagDirty) : (Flags & ~FlagDirty);
  }
};

/// A traced write of a word into a modifiable.
struct WriteNode : Use {
  WriteNode() : Use(TraceKind::Write), Value(0) {}
  explicit WriteNode(RawInit R) : Use(TraceKind::Write, R) {}

  Word Value;
};

/// A traced, memo-keyed allocation. Init is retained because its function
/// pointer and argument words are the memo key; Block is the user memory.
/// A re-execution that allocates with the same key steals Block, giving
/// the pointer identity that lets downstream writes equality-cut and
/// downstream reads memo-match (the paper's Sec. 1 "memoization" role).
struct AllocNode : TraceNode {
  AllocNode()
      : TraceNode(TraceKind::Alloc), Init(nullptr), Block(nullptr), Size(0),
        MemoNext(nullptr), MemoPrev(nullptr), MemoHash(0) {}
  explicit AllocNode(RawInit R) : TraceNode(TraceKind::Alloc, R) {}

  static constexpr uint8_t FlagModref = 1;

  Closure *Init;
  void *Block;
  uint32_t Size;

  AllocNode *MemoNext;
  AllocNode *MemoPrev;
  uint64_t MemoHash;

  bool isModrefBlock() const { return Flags & FlagModref; }
};

/// A modifiable reference: an initial (meta-written) value plus the
/// time-ordered list of traced uses. The value visible to a read at time t
/// is the value of the latest traced write before t, else Initial.
struct Modref {
  Word Initial = 0;
  Use *Head = nullptr;
  Use *Tail = nullptr;
  /// Insertion cursor: the use most recently inserted into (or left
  /// adjacent to an unlink from) this list. Runtime::insertUse starts
  /// its placement scan here instead of at Tail, so runs of nearby
  /// insertions — the common case during mid-interval re-execution —
  /// cost O(distance from the previous insertion) rather than
  /// O(uses after the position). Never dangles: unlinkUse repairs it.
  Use *Hint = nullptr;
};

// The size-class contracts behind the HeapIndex and Gov placements above:
// reads are the bulk of a trace and writes come second, so neither may
// cross into the next 16-byte arena size class.
static_assert(sizeof(ReadNode) <= 96, "ReadNode outgrew its size class");
static_assert(sizeof(WriteNode) <= 48, "WriteNode outgrew its size class");

/// Tagging scheme for OmNode::Item. A read's end timestamp points back at
/// the read with the low bit set so interval walks can tell starts from
/// ends.
inline void *tagEndItem(ReadNode *R) {
  return reinterpret_cast<void *>(reinterpret_cast<uintptr_t>(R) | 1);
}
inline bool isEndItem(void *Item) {
  return reinterpret_cast<uintptr_t>(Item) & 1;
}
inline ReadNode *untagEndItem(void *Item) {
  return reinterpret_cast<ReadNode *>(reinterpret_cast<uintptr_t>(Item) & ~uintptr_t(1));
}

} // namespace ceal

#endif // CEAL_RUNTIME_TRACE_H
