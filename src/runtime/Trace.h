//===- runtime/Trace.h - Trace nodes and modifiables ------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic dependence graph. Every traced action of a core execution
/// owns a node: reads (with their re-executable closure and time
/// interval), writes (imperative multi-write modifiables in the style of
/// Acar et al., POPL 2008), and memo-keyed allocations (Hammer and Acar,
/// ISMM 2008). Nodes are threaded through the order-maintenance list so a
/// time interval can be enumerated and revoked, and reads/writes of one
/// modifiable form a per-modifiable list in timestamp order so a write can
/// invalidate exactly the readers it governs.
///
/// Every inter-node edge is a 32-bit arena handle (Arena::Handle), not a
/// pointer: trace nodes, closures, and user blocks live in the runtime's
/// Mem arena, timestamps in the order list's own arena, and each edge
/// names its target by region offset. That packs the per-node layouts to
///
///   TraceNode  8 B   (kind, flags, start timestamp)
///   Use       20 B   (+ modifiable, prev/next use)
///   ReadNode  56 B   (+ closure, seen value, end, governing write,
///                      queue index, memo links)
///   WriteNode 32 B   (+ value)
///   AllocNode 32 B   (+ initializer, block, size, memo links)
///   Modref    24 B   (initial value + head/tail/hint of the use list)
///
/// — roughly half the pointer-width layout, which the CEAL_WIDE_TRACE
/// build keeps available for A/B comparison (handles widen to pointers,
/// same code shape). See DESIGN.md "Trace memory layout".
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_TRACE_H
#define CEAL_RUNTIME_TRACE_H

#include "om/OrderList.h"
#include "runtime/Closure.h"
#include "runtime/MemoTable.h"
#include "runtime/Word.h"

#include <cstdint>

namespace ceal {

struct Modref;
struct Use;
struct WriteNode;
struct ReadNode;

enum class TraceKind : uint8_t {
  Read,
  Write,
  Alloc,
};

/// Base of all trace nodes. Start is the node's timestamp (a handle into
/// the order list's arena); the timestamp's Item refers back to this node
/// (reads additionally tag their end timestamp, see ReadNode::End).
struct TraceNode {
  TraceKind Kind;
  uint8_t Flags;
  Handle<OmNode> Start;

  /// Tag for Runtime::newNode: skip zero-initializing the fields the
  /// tracing hot paths overwrite unconditionally before anything reads
  /// them (every trace node is stamped, linked, and memo-keyed in the
  /// same traced operation that creates it). Kind and Flags are still
  /// initialized — the dirty bit must start clear no matter who
  /// allocates (as must ReadNode's queue index, see its RawInit).
  struct RawInit {};

  /// Set on nodes whose memo-index insert is parked on a worker strand
  /// during a parallel propagation phase (bucket-chain order must not
  /// depend on worker scheduling, so phase inserts are applied at the
  /// join in worker order — see ParallelPropagate). Cleared when the
  /// deferred insert is applied or the node is revoked first; never set
  /// outside a phase, so audits and digests at meta time see it clear.
  /// Reads share the Flags byte with the atomically-updated dirty bit,
  /// so read-node accesses use the RMW helpers below.
  static constexpr uint8_t FlagMemoDeferred = 2;

  explicit TraceNode(TraceKind K) : Kind(K), Flags(0), Start{} {}
  TraceNode(TraceKind K, RawInit) : Kind(K), Flags(0) {}

  /// FlagMemoDeferred accessors, atomic because a read node's Flags byte
  /// is concurrently dirty-marked by foreign workers during a phase.
  void setMemoDeferredAtomic() {
    __atomic_fetch_or(&Flags, FlagMemoDeferred, __ATOMIC_RELAXED);
  }
  void clearMemoDeferredAtomic() {
    __atomic_fetch_and(&Flags, uint8_t(~FlagMemoDeferred), __ATOMIC_RELAXED);
  }
  bool isMemoDeferred() const {
    return __atomic_load_n(&Flags, __ATOMIC_RELAXED) & FlagMemoDeferred;
  }
};

/// Base of per-modifiable uses (reads and writes), linked in time order.
struct Use : TraceNode {
  Handle<Modref> Ref;
  Handle<Use> PrevUse;
  Handle<Use> NextUse;

  explicit Use(TraceKind K) : TraceNode(K), Ref{}, PrevUse{}, NextUse{} {}
  Use(TraceKind K, RawInit R) : TraceNode(K, R) {}
};

/// A traced read: the modifiable, the closure that consumed the value, the
/// value it saw, and the time interval its body occupied. The interval's
/// end is the point where the enclosing tail-call chain finished; during
/// change propagation the closure re-executes inside (Start, End).
struct ReadNode : Use {
  ReadNode()
      : Use(TraceKind::Read), Clo{}, SeenValue(0), End{}, Gov{},
        HeapIndex(-1), Memo{} {}
  /// End is initialized (not raw) so a cross-region invalidation during a
  /// parallel phase can distinguish an open read — created, linked into
  /// its use list, but not yet end-stamped — and forward it instead of
  /// resolving a garbage interval bound.
  explicit ReadNode(RawInit R)
      : Use(TraceKind::Read, R), End{}, HeapIndex(-1) {}

  static constexpr uint8_t FlagDirty = 1;

  Handle<Closure> Clo;
  Word SeenValue;
  Handle<OmNode> End;
  /// Governing-write cache: the latest write strictly preceding this read
  /// in its modifiable's use list — the write whose value the read
  /// observes — or null when the prefix holds no write (the read is
  /// governed by Modref::Initial). Maintained by Runtime::insertUse /
  /// write / revokeWrite so valueGoverning is O(1) instead of
  /// O(reads since the last write); audited against a full backward walk
  /// by TraceAudit. Only reads carry the cache: a write's governing write
  /// is derived in O(1) from its predecessor (Runtime::writeGoverning).
  Handle<WriteNode> Gov;
  /// Position in the propagation queue, or -1.
  int32_t HeapIndex;

  /// Memo-table chaining (keyed by modifiable, function, argument words).
  MemoLinks<ReadNode> Memo;

  bool isDirty() const { return Flags & FlagDirty; }
  void setDirty(bool D) {
    Flags = D ? (Flags | FlagDirty) : (Flags & ~FlagDirty);
  }

  /// Atomic dirty-bit accessors for the parallel propagation phase: a
  /// worker re-executing a write can race another worker (or itself)
  /// invalidating the same reader, so marking must be an RMW. Returns
  /// the prior dirty state, letting exactly one marker enqueue the read.
  bool markDirtyAtomic() {
    uint8_t Old = __atomic_fetch_or(&Flags, FlagDirty, __ATOMIC_ACQ_REL);
    return Old & FlagDirty;
  }
  void clearDirtyAtomic() {
    __atomic_fetch_and(&Flags, uint8_t(~FlagDirty), __ATOMIC_ACQ_REL);
  }
  bool isDirtyAtomic() const {
    return __atomic_load_n(&Flags, __ATOMIC_ACQUIRE) & FlagDirty;
  }

  /// Atomic End accessors for the parallel phase: the owning worker
  /// stamps End at trampoline unwind without holding the modifiable's
  /// stripe, while a cross-region invalidator inspects it to test region
  /// containment. A null End reads as "still open" and the invalidator
  /// must forward rather than resolve the interval.
  Handle<OmNode> endAcquire() const {
#ifdef CEAL_WIDE_TRACE
    return Handle<OmNode>(__atomic_load_n(&End.Ptr, __ATOMIC_ACQUIRE));
#else
    return Handle<OmNode>(__atomic_load_n(&End.Bits, __ATOMIC_ACQUIRE));
#endif
  }
  void endRelease(Handle<OmNode> H) {
#ifdef CEAL_WIDE_TRACE
    __atomic_store_n(&End.Ptr, H.Ptr, __ATOMIC_RELEASE);
#else
    __atomic_store_n(&End.Bits, H.Bits, __ATOMIC_RELEASE);
#endif
  }
};

/// A traced write of a word into a modifiable.
struct WriteNode : Use {
  WriteNode() : Use(TraceKind::Write), Value(0) {}
  explicit WriteNode(RawInit R) : Use(TraceKind::Write, R) {}

  Word Value;
};

/// A traced, memo-keyed allocation. Init is retained because its function
/// pointer and argument words are the memo key; Block is the user memory.
/// A re-execution that allocates with the same key steals Block, giving
/// the pointer identity that lets downstream writes equality-cut and
/// downstream reads memo-match (the paper's Sec. 1 "memoization" role).
struct AllocNode : TraceNode {
  AllocNode()
      : TraceNode(TraceKind::Alloc), Init{}, Block{}, Size(0), Memo{} {}
  explicit AllocNode(RawInit R) : TraceNode(TraceKind::Alloc, R) {}

  static constexpr uint8_t FlagModref = 1;

  Handle<Closure> Init;
  Handle<void> Block;
  uint32_t Size;

  MemoLinks<AllocNode> Memo;

  bool isModrefBlock() const { return Flags & FlagModref; }
};

/// A modifiable reference: an initial (meta-written) value plus the
/// time-ordered list of traced uses. The value visible to a read at time t
/// is the value of the latest traced write before t, else Initial.
struct Modref {
  Word Initial = 0;
  Handle<Use> Head{};
  Handle<Use> Tail{};
  /// Insertion cursor: the use most recently inserted into (or left
  /// adjacent to an unlink from) this list. Runtime::insertUse starts
  /// its placement scan here instead of at Tail, so runs of nearby
  /// insertions — the common case during mid-interval re-execution —
  /// cost O(distance from the previous insertion) rather than
  /// O(uses after the position). Never dangles: unlinkUse repairs it.
  Handle<Use> Hint{};
};

// The compressed size-class contracts (see the file comment): each layout
// must exactly fill its 8-byte arena class; growing any of them is a
// measured regression on every app's max-live footprint, so it fails the
// build rather than landing silently. The wide build only bounds the
// layouts loosely — it exists for A/B measurement, not for a contract.
#ifndef CEAL_WIDE_TRACE
static_assert(sizeof(TraceNode) == 8, "TraceNode outgrew its packed layout");
static_assert(sizeof(Use) == 20, "Use outgrew its packed layout");
static_assert(sizeof(ReadNode) == 56, "ReadNode outgrew its size class");
static_assert(sizeof(WriteNode) == 32, "WriteNode outgrew its size class");
static_assert(sizeof(AllocNode) == 32, "AllocNode outgrew its size class");
static_assert(sizeof(Modref) == 24, "Modref outgrew its size class");
#else
static_assert(sizeof(ReadNode) <= 112, "ReadNode outgrew its size class");
static_assert(sizeof(WriteNode) <= 48, "WriteNode outgrew its size class");
static_assert(sizeof(AllocNode) <= 64, "AllocNode outgrew its size class");
#endif

/// A fingerprint of the trace's in-memory layout, derived from the
/// static_asserted node sizes above plus the handle width and grain. Two
/// builds agree on this value exactly when a trace region serialized by
/// one is byte-compatible with the other, so the snapshot loader
/// (runtime/Snapshot) embeds it in the checkpoint header and rejects any
/// mismatch — in particular, a CEAL_WIDE_TRACE build can never load a
/// compressed-trace checkpoint or vice versa.
inline uint64_t traceLayoutFingerprint() {
  uint64_t H = 0x4345414c00000001ULL; // format root: 'CEAL', revision 1
  auto Mix = [&H](uint64_t W) { H = hashMixWord(H, W); };
#ifdef CEAL_WIDE_TRACE
  Mix(2);
#else
  Mix(1);
#endif
  Mix(sizeof(void *));
  Mix(Arena::HandleGrain);
  Mix(sizeof(Handle<int>));
  Mix(sizeof(OmItem));
  Mix(sizeof(OmNode));
  Mix(sizeof(OmGroup));
  Mix(sizeof(Closure));
  Mix(sizeof(TraceNode));
  Mix(sizeof(Use));
  Mix(sizeof(ReadNode));
  Mix(sizeof(WriteNode));
  Mix(sizeof(AllocNode));
  Mix(sizeof(Modref));
  Mix(sizeof(MemoLinks<ReadNode>));
  return H;
}

/// Tagging scheme for OmNode::Item (an OmItem — see om/OrderList.h). A
/// trace node's start timestamp carries the node's Mem-arena handle; a
/// read's end timestamp carries the read's handle with the tag bit set so
/// interval walks can tell starts from ends. Compressed items tag bit 31
/// — which requires the trace arena region to stay under 2^31 grains
/// (16 GB; the default region is 8 GB) — wide items tag bit 0 of the
/// pointer (all trace nodes are 8-aligned).
#ifdef CEAL_WIDE_TRACE

inline OmItem itemOf(const Arena &, const TraceNode *T) {
  return reinterpret_cast<uintptr_t>(T);
}
inline OmItem endItemOf(const Arena &, const ReadNode *R) {
  return reinterpret_cast<uintptr_t>(R) | 1;
}
inline bool isEndItem(OmItem I) { return I & 1; }
inline TraceNode *itemNode(const Arena &, OmItem I) {
  return reinterpret_cast<TraceNode *>(I);
}
inline ReadNode *endItemRead(const Arena &, OmItem I) {
  return reinterpret_cast<ReadNode *>(I & ~uintptr_t(1));
}

#else

constexpr OmItem OmItemEndBit = OmItem(1) << 31;

inline OmItem itemOf(const Arena &Mem, const TraceNode *T) {
  OmItem I = Mem.handle(T).Bits;
  assert(!(I & OmItemEndBit) && "trace arena outgrew the end-tag bit");
  return I;
}
inline OmItem endItemOf(const Arena &Mem, const ReadNode *R) {
  OmItem I = Mem.handle(R).Bits;
  assert(!(I & OmItemEndBit) && "trace arena outgrew the end-tag bit");
  return I | OmItemEndBit;
}
inline bool isEndItem(OmItem I) { return I & OmItemEndBit; }
inline TraceNode *itemNode(const Arena &Mem, OmItem I) {
  return Mem.ptr(Handle<TraceNode>(I));
}
inline ReadNode *endItemRead(const Arena &Mem, OmItem I) {
  return Mem.ptr(Handle<ReadNode>(I & ~OmItemEndBit));
}

#endif

} // namespace ceal

#endif // CEAL_RUNTIME_TRACE_H
