//===- runtime/Snapshot.h - Versioned trace checkpoints --------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace persistence: a versioned, integrity-checked checkpoint of a
/// quiescent Runtime — the arena regions (trace nodes, closures, user
/// blocks, OM timestamps and groups), the memo indexes, the runtime's
/// scalar state, and caller-chosen root pointers — plus two load paths:
///
///  * load()           safe copying restore: every section is read into
///                     freshly claimed regions, every byte checksummed,
///                     and the full trace sanitizer (TraceAudit::inspect)
///                     runs on top of the linear load validator. The
///                     trust-nothing path for untrusted files.
///  * mmapWarmStart()  maps the arena sections copy-on-write straight
///                     from the file and resumes propagation in place in
///                     O(metadata): by default the O(file) arena
///                     checksums and the O(trace) validator are skipped —
///                     the file is assumed to be save()'s own unmodified
///                     output — which is what makes a warm start cheaper
///                     than re-running the core from scratch.
///                     WarmStartOptions::VerifyTrace restores load()'s
///                     full verification on this path.
///
/// The format is position-dependent by design: PR 5 made every *trace
/// edge* a region offset, but user data words, OM node/group links, and
/// freelist chains are raw addresses, so the loader claims the exact
/// region bases recorded in the header (an atomic MAP_FIXED_NOREPLACE
/// claim; AddressUnavailable if the space is taken) and the entire region
/// image is then valid verbatim. Code addresses (closure functions and
/// function-pointer arguments) must also coincide, which the header's
/// anchor-address field checks (CodeMoved otherwise); cross-process use
/// therefore requires the same binary loaded at the same base — run both
/// ends with ASLR disabled (`setarch -R`) or from a non-PIE build. See
/// DESIGN.md "Trace persistence".
///
/// On-disk layout (all integers native-endian; an endianness tag rejects
/// foreign files):
///
///   [0, 4096)   FileHeader + section table, zero-padded; checksummed as
///               a whole with the checksum field zeroed.
///   sections    contiguous (each starts where the previous ended, the
///               last ends at FileBytes), in the fixed order META,
///               MEMO_READ, MEMO_ALLOC, ROOTS, MEM, OM; MEM and OM are
///               page-aligned so they can be mapped directly. Every
///               section starts with an 8-byte kind preamble — for the
///               arena sections it overlays region bytes [0, 8), which
///               the runtime never uses (offset 0 is the null handle) —
///               so a checksum-preserving payload swap still fails.
///
/// The loader trusts nothing about the file's *structure* on either
/// path: header fields, the section table, and every offset, handle, and
/// pointer the loader itself follows are bounds-checked before any
/// dereference, and every rejection carries a located diagnostic.
/// Content verification (arena checksums + the trace walk) is always on
/// for load() and opt-in for mmapWarmStart(). A failure before the
/// address-space claim leaves the Runtime untouched; a failure after it
/// leaves the Runtime safe to destroy but not to use.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_RUNTIME_SNAPSHOT_H
#define CEAL_RUNTIME_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ceal {

class Runtime;

class Snapshot {
public:
  /// Load/save outcome. Each failure mode has its own code so tests (and
  /// operators) can tell a foreign file from a corrupt one from an
  /// environment problem.
  enum class Status : uint8_t {
    Ok,
    /// Runtime not quiescent (save) or not pristine (load), or a bad root.
    BadState,
    /// open/read/write/stat failed (see the diagnostic for errno text).
    IoError,
    /// File shorter than its header claims (including a zero-length file).
    Truncated,
    /// Not a CEAL snapshot.
    BadMagic,
    /// Format version newer than this build understands.
    BadVersion,
    /// Written on a machine with different byte order.
    BadEndian,
    /// Trace layout fingerprint mismatch (e.g. CEAL_WIDE_TRACE vs
    /// compressed build).
    BadLayout,
    /// Header block checksum mismatch.
    BadHeader,
    /// Section table inconsistent (kinds, order, offsets, coverage).
    BadSectionTable,
    /// Section content carries the wrong kind preamble (payload swap).
    BadSectionKind,
    /// Section content checksum mismatch.
    BadChecksum,
    /// Metadata section semantically invalid (counts, sizes, geometry).
    BadMeta,
    /// Runtime configuration incompatible with the checkpoint
    /// (trace-layout-affecting knobs must match).
    ConfigMismatch,
    /// The code anchor moved: the loading process's code is not at the
    /// address the checkpoint was saved against.
    CodeMoved,
    /// An offset/handle points outside the serialized arena extent.
    HandleOutOfBounds,
    /// The recorded region base addresses are already occupied in this
    /// process (retry in a fresh process, or with ASLR disabled).
    AddressUnavailable,
    /// Content passed all checksums but failed the load-time trace
    /// validation (TraceAudit load mode).
    AuditFailed,
  };
  static const char *statusName(Status S);

  //===--------------------------------------------------------------===//
  // On-disk format (public contract; tests and tooling build on it)
  //===--------------------------------------------------------------===//

  static constexpr uint64_t Magic = 0x50414e534c414543ULL; // "CEALSNAP"
  // Version 2: Checksum64 moved to the 32-lane block format
  // (support/Checksum.h), so v1 digests no longer verify.
  static constexpr uint32_t FormatVersion = 2;
  static constexpr uint32_t EndianTag = 0x01020304;
  static constexpr uint64_t HeaderBytes = 4096;

  enum SectionKind : uint32_t {
    SecMeta = 1,
    SecMemoRead = 2,
    SecMemoAlloc = 3,
    SecRoots = 4,
    SecMem = 5,
    SecOm = 6,
  };
  static constexpr uint32_t NumSections = 6;

  /// The 8-byte tag at the start of every section payload.
  static constexpr uint64_t sectionPreamble(uint32_t Kind) {
    return Magic ^ ((uint64_t(Kind) << 32) | Kind);
  }

  struct SectionEntry {
    uint32_t Kind;
    uint32_t Reserved;
    uint64_t Offset;   ///< Absolute file offset.
    uint64_t Length;   ///< Padded length; the next section starts here.
    uint64_t Checksum; ///< Checksum64 over [Offset, Offset + Length).
  };

  struct FileHeader {
    uint64_t MagicWord;
    uint32_t Version;
    uint32_t Endian;
    uint64_t LayoutFingerprint; ///< traceLayoutFingerprint() of the saver.
    uint64_t AnchorAddr;        ///< codeAnchor() of the saving process.
    uint64_t FileBytes;         ///< Total file size.
    uint64_t PageBytes;         ///< Saver's page size (mmap path only).
    uint64_t MemBase, MemRegionBytes, MemBumpUsed;
    uint64_t OmBase, OmRegionBytes, OmBumpUsed;
    uint32_t SectionCount;
    uint32_t Reserved0;
    uint64_t HeaderChecksum; ///< Over the 4096-byte block, field zeroed.
    SectionEntry Sections[NumSections];
  };

  /// Per-arena scalar state inside the META section.
  struct ArenaMeta {
    uint64_t BumpUsed;
    uint64_t LiveBytes, MaxLiveBytes, TotalAllocated, AllocCount;
    uint64_t FreeHeads[64]; ///< Region offsets of freelist heads; 0 null.
    uint64_t LargeCount;    ///< (size, head-offset) pairs in the tail.
  };

  /// Fixed part of the META section body (follows the 8-byte preamble;
  /// the variable tail holds the Mem then Om large-freelist pairs). All
  /// pointers are stored as region offsets.
  struct MetaFixed {
    uint64_t CursorOff, TraceEndOff; ///< OM-region offsets.
    uint64_t Stats[11];              ///< Runtime::Stats, declared order.
    uint64_t MetaBytes, GcAllocMark;
    uint64_t BoxBytesPerNode; ///< Layout-affecting config, must match.
    uint64_t OmBaseOff, OmFirstGroupOff;
    uint64_t OmSize, OmRelabels, OmRangeRelabels;
    uint64_t ReadMemoCount, ReadMemoBuckets;
    uint64_t AllocMemoCount, AllocMemoBuckets;
    uint64_t RootCount;
    ArenaMeta MemA, OmA;
  };

  //===--------------------------------------------------------------===//
  // Entry points
  //===--------------------------------------------------------------===//

  struct SaveOptions {
    /// Mutator pointers into the runtime arena (modrefs, cells, blocks)
    /// to persist and hand back from load(); how a cross-process mutator
    /// reconstructs its handles on the structures it built.
    std::vector<const void *> Roots;
  };

  struct SaveResult {
    Status St = Status::Ok;
    std::string Diagnostic;
    uint64_t FileBytes = 0;
    bool ok() const { return St == Status::Ok; }
  };

  struct LoadResult {
    Status St = Status::Ok;
    std::string Diagnostic;
    /// The saver's SaveOptions::Roots, revalidated, in order.
    std::vector<void *> Roots;
    bool ok() const { return St == Status::Ok; }
  };

  /// Writes a checkpoint of the quiescent \p RT to \p Path.
  static SaveResult save(const Runtime &RT, const std::string &Path,
                         const SaveOptions &Opt = {});

  /// Safe copying restore into the pristine \p RT (no trace yet): claims
  /// the recorded region bases, copies every section in, runs the linear
  /// load validator and then the full trace sanitizer. This is the
  /// trust-nothing path: every byte is checksummed and every trace
  /// structure walked before the runtime may propagate. Use it whenever
  /// the file crossed a machine, a network, or an untrusted writer.
  static LoadResult load(Runtime &RT, const std::string &Path);

  struct WarmStartOptions {
    /// Treat the file as untrusted: verify the arena and memo sections'
    /// content checksums, walk the serialized freelist chains, and run
    /// the linear TraceAudit load validator, exactly like load(). Off by
    /// default — the warm-start contract is a checkpoint save() wrote on
    /// this host that nothing modified since, and its point is to resume
    /// in O(metadata) instead of O(trace). The header, META, and root
    /// sections are still fully checksummed either way, and every offset
    /// the loader installs (cursor, roots, freelist heads, memo buckets)
    /// is bounds-checked, so a *loader* crash stays impossible; what the
    /// fast path gives up is detecting corruption inside the trace-sized
    /// payloads (the mapped arenas, the memo bucket words, the freelist
    /// chains) before propagation walks them. See DESIGN.md "Trace
    /// persistence".
    bool VerifyTrace = false;
  };

  /// Warm start: like load(), but the arena sections are mapped
  /// copy-on-write from the file instead of copied, and the O(trace)
  /// verification passes are governed by \p Opt (off by default; the
  /// page-in cost is deferred to first touch during propagation).
  /// Requires the saver's page size. (Two overloads rather than a `= {}`
  /// default: a nested aggregate's member initializers are not usable in
  /// a default argument of the enclosing class.)
  static LoadResult mmapWarmStart(Runtime &RT, const std::string &Path);
  static LoadResult mmapWarmStart(Runtime &RT, const std::string &Path,
                                  const WarmStartOptions &Opt);

  /// Insensitive only where semantics are (memo chain order and block
  /// placement are excluded): a digest of the trace's observable shape —
  /// the timestamp sequence with each node's kind, flags, values, and
  /// closure identity, with in-region values renamed to first-occurrence
  /// ordinals so two traces equal up to a bijection of block addresses
  /// digest alike. Identical digests mean observationally identical
  /// traces; the round-trip oracle compares a reloaded trace against a
  /// continuously-running one with this, and the parallel-propagation
  /// oracle compares a parallel run against a sequential one.
  static uint64_t traceShapeDigest(const Runtime &RT);

  /// Equivalent to RT.readyForCheckpoint(Why).
  static bool readyToSave(const Runtime &RT, std::string *Why = nullptr);

  /// The code-address anchor the header records: one symbol in this
  /// image, standing in for "all code is where the saver had it".
  static uint64_t codeAnchor();

private:
  struct Impl; ///< Defined in Snapshot.cpp; inherits the friendships.
};

} // namespace ceal

#endif // CEAL_RUNTIME_SNAPSHOT_H
