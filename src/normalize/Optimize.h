//===- normalize/Optimize.h - Analysis-driven CL optimization --*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization pass pipeline that runs around NORMALIZE, built on
/// the dataflow analyses (Dataflow.h, ModrefEffects.h, RedundantOps.h):
///
///  Pre-normalization (on arbitrary CL):
///   * redundant-read elimination — a read available on every path
///     becomes an assignment from the earlier read's destination;
///   * dead-write elimination — writes surely overwritten before any
///     observation become nops;
///   * dead-code elimination — assigns/reads/allocations whose
///     destination is dead become nops.
///
///  Post-normalization (on the fresh read-entry functions only, whose
///  signatures are internal to the program):
///   * constant-argument rematerialization — a parameter that receives
///     the same integer constant at every tail site is dropped and
///     rematerialized by an entry assignment in the callee;
///   * dead-parameter elimination — parameters unused by the callee
///     body are dropped at every site.
///
/// Both post passes shrink the environments of the closures that read
/// commands allocate per trace node (ML(P) of Theorems 3-5): fewer tail
/// arguments mean fewer words per closure and smaller memo keys.
/// Removing a key word is uniform across all sites, so memo matches are
/// unchanged or strictly improved; a dropped word was either the same
/// constant everywhere or never used, so a match never revives a trace
/// the full key would have rejected for an observable reason.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_NORMALIZE_OPTIMIZE_H
#define CEAL_NORMALIZE_OPTIMIZE_H

#include "cl/Ir.h"
#include "normalize/Normalize.h"

#include <cstddef>

namespace ceal {
namespace optimize {

struct OptStats {
  size_t RedundantReadsElim = 0;
  size_t DeadWritesElim = 0;
  size_t DeadReadsElim = 0;
  size_t DeadAssignsElim = 0;
  size_t DeadAllocsElim = 0;
  size_t ConstArgsRemat = 0;
  size_t ParamsPruned = 0;
  /// Static read-tail environment words (sum of tail-argument counts
  /// over all read blocks) before/after closure slimming; only
  /// meaningful for slimClosures / runPassPipeline.
  size_t ReadEnvWordsBefore = 0;
  size_t ReadEnvWordsAfter = 0;

  size_t totalElim() const {
    return RedundantReadsElim + DeadWritesElim + DeadReadsElim +
           DeadAssignsElim + DeadAllocsElim + ConstArgsRemat + ParamsPruned;
  }
};

/// Pre-normalization cleanups, in place. Preserves function signatures
/// and block ids (eliminated commands become nops), the conventional
/// semantics, and the self-adjusting semantics of the normalized result.
OptStats optimizeProgram(cl::Program &P);

/// Post-normalization closure slimming, in place. Only functions with
/// id >= \p FirstInternal (the fresh functions NORMALIZE created —
/// callers always pass In.Funcs.size()) have their signatures changed;
/// every tail site is rewritten consistently. Preserves normal form.
OptStats slimClosures(cl::Program &P, cl::FuncId FirstInternal);

/// Sum of tail-argument counts over all read blocks: the static measure
/// of per-trace-node closure environment size.
size_t readTailEnvWords(const cl::Program &P);

struct PipelineResult {
  cl::Program Prog;
  normalize::NormalizeStats NStats;
  OptStats Pre;
  OptStats Post;
};

/// The full pipeline: pre-normalization cleanups, NORMALIZE, then
/// closure slimming on the fresh functions.
PipelineResult runPassPipeline(const cl::Program &P);

} // namespace optimize
} // namespace ceal

#endif // CEAL_NORMALIZE_OPTIMIZE_H
