//===- normalize/Normalize.h - The NORMALIZE transformation ----*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NORMALIZE (paper Sec. 5, Fig. 7): restructures a CL program so that
/// every read command is followed by a tail jump to a function that marks
/// the start of the code depending on the read — the representation the
/// translation phase and the self-adjusting VM require.
///
/// Following Sec. 7, the implementation is intra-procedural: each
/// function's rooted graph is analyzed independently (inter-procedural
/// edges do not affect dominator trees of rooted program graphs). Units
/// are the subtrees under the root of the dominator tree; a unit whose
/// defining node is a block (not the function node) is *critical* and
/// becomes a fresh function whose formal parameters are the variables
/// live at its defining block and whose locals are the unit's remaining
/// free variables. Edges into a critical defining node become tail jumps
/// when they come from outside the unit or from a read block; intra-unit
/// edges from non-read blocks survive as gotos.
///
/// Deviation from the paper's WLOG convention: the paper assumes the
/// read's destination is the first argument of the following tail jump.
/// We instead pass live variables in ascending VarId order and let
/// consumers (VM / translation) locate the read destination's position
/// in the argument list, which supports several reads sharing one read
/// entry.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_NORMALIZE_NORMALIZE_H
#define CEAL_NORMALIZE_NORMALIZE_H

#include "cl/Ir.h"

#include <cstdint>
#include <string>

namespace ceal {
namespace normalize {

struct NormalizeStats {
  size_t InputBlocks = 0;
  size_t OutputBlocks = 0;
  size_t FreshFunctions = 0;
  size_t MaxLive = 0; ///< ML(P): max live variables over all blocks.
  size_t InputWords = 0;
  size_t OutputWords = 0;
};

struct NormalizeResult {
  cl::Program Prog;
  NormalizeStats Stats;
};

/// Normalizes \p P; the result satisfies cl::isNormalForm and preserves
/// the program's semantics (checked extensively in tests).
NormalizeResult normalizeProgram(const cl::Program &P);

} // namespace normalize
} // namespace ceal

#endif // CEAL_NORMALIZE_NORMALIZE_H
