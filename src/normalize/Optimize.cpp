//===- normalize/Optimize.cpp - Analysis-driven CL optimization ------------===//

#include "normalize/Optimize.h"

#include "analysis/Liveness.h"
#include "analysis/ModrefEffects.h"
#include "analysis/ReachingDefs.h"
#include "analysis/RedundantOps.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ceal;
using namespace ceal::cl;
using namespace ceal::optimize;
using namespace ceal::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Shared rewriting helpers
//===----------------------------------------------------------------------===//

void remapJumpVars(Jump &J, const std::vector<VarId> &Map) {
  if (J.K == Jump::Tail)
    for (VarId &A : J.Args)
      A = Map[A];
}

void remapBlockVars(BasicBlock &B, const std::vector<VarId> &Map) {
  switch (B.K) {
  case BasicBlock::Done:
    break;
  case BasicBlock::Cond:
    B.CondVar = Map[B.CondVar];
    remapJumpVars(B.J1, Map);
    remapJumpVars(B.J2, Map);
    break;
  case BasicBlock::Cmd: {
    Command &C = B.C;
    auto M = [&](VarId &V) {
      if (V != InvalidId)
        V = Map[V];
    };
    M(C.Dst);
    M(C.Base);
    M(C.Idx);
    M(C.Src);
    M(C.Ref);
    M(C.Val);
    M(C.SizeVar);
    for (VarId &A : C.Args)
      A = Map[A];
    switch (C.E.K) {
    case Expr::Const:
      break;
    case Expr::Var:
      C.E.V = Map[C.E.V];
      break;
    case Expr::Prim:
      for (VarId &A : C.E.Args)
        A = Map[A];
      break;
    case Expr::Index:
      C.E.V = Map[C.E.V];
      C.E.Idx = Map[C.E.Idx];
      break;
    }
    remapJumpVars(B.J, Map);
    break;
  }
  }
}

void shiftGotoTargets(BasicBlock &B, BlockId Delta) {
  auto Shift = [&](Jump &J) {
    if (J.K == Jump::Goto)
      J.Target += Delta;
  };
  if (B.K == BasicBlock::Cond) {
    Shift(B.J1);
    Shift(B.J2);
  } else if (B.K == BasicBlock::Cmd) {
    Shift(B.J);
  }
}

/// Applies one round of redundancy removal (redundant reads, dead
/// writes, dead code) to \p P in place; returns the number of rewrites.
size_t applyRedundancy(Program &P, OptStats &Stats) {
  std::vector<FuncEffects> FX = computeModrefEffects(P);
  RedundancyInfo Info = computeRedundantOps(P, FX);
  size_t Applied = 0;
  for (FuncId FI = 0; FI < P.Funcs.size(); ++FI) {
    Function &F = P.Funcs[FI];
    const FuncRedundancy &FR = Info.Funcs[FI];
    // The analyses were computed on the pre-rewrite program. Rewriting a
    // redundant read to `x := y` makes its provider's destination y live
    // even where the old program left it dead, and a provider that is
    // itself redundant loses its destination when its block is rewritten.
    // So snapshot every provider's destination up front and keep provider
    // blocks out of this round's dead-op removal; the next round re-runs
    // the analyses and reaps whatever is still dead.
    std::vector<bool> IsProvider(F.Blocks.size(), false);
    std::vector<VarId> ProviderDst;
    ProviderDst.reserve(FR.RedundantReads.size());
    for (auto [B, Provider] : FR.RedundantReads) {
      (void)B;
      IsProvider[Provider] = true;
      ProviderDst.push_back(F.Blocks[Provider].C.Dst);
    }
    for (size_t I = 0; I < FR.RedundantReads.size(); ++I) {
      BlockId B = FR.RedundantReads[I].first;
      Command &C = F.Blocks[B].C;
      VarId Dst = C.Dst;
      VarId From = ProviderDst[I];
      C = Command();
      if (Dst == From) {
        C.K = Command::Nop;
      } else {
        C.K = Command::Assign;
        C.Dst = Dst;
        C.E = Expr::makeVar(From);
      }
      ++Stats.RedundantReadsElim;
      ++Applied;
    }
    auto Nop = [&](BlockId B, size_t &Counter) {
      if (IsProvider[B])
        return;
      F.Blocks[B].C = Command();
      ++Counter;
      ++Applied;
    };
    for (BlockId B : FR.DeadWrites)
      Nop(B, Stats.DeadWritesElim);
    for (BlockId B : FR.DeadReads)
      Nop(B, Stats.DeadReadsElim);
    for (BlockId B : FR.DeadAssigns)
      Nop(B, Stats.DeadAssignsElim);
    for (BlockId B : FR.DeadAllocs)
      Nop(B, Stats.DeadAllocsElim);
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Closure slimming (post-NORMALIZE)
//===----------------------------------------------------------------------===//

/// One tail-jump site: the jump lives in block \p Block of \p Caller;
/// \p Which selects the jump (0 = Cmd jump, 1 = J1, 2 = J2).
struct TailSite {
  FuncId Caller;
  BlockId Block;
  uint8_t Which;
};

Jump &siteJump(Program &P, const TailSite &S) {
  BasicBlock &B = P.Funcs[S.Caller].Blocks[S.Block];
  return S.Which == 0 ? B.J : S.Which == 1 ? B.J1 : B.J2;
}

/// Collects every tail site per callee; marks functions that are also
/// referenced by call/alloc commands (their signatures stay fixed).
void collectSites(const Program &P, std::vector<std::vector<TailSite>> &Sites,
                  std::vector<bool> &HasNonTailRef) {
  Sites.assign(P.Funcs.size(), {});
  HasNonTailRef.assign(P.Funcs.size(), false);
  for (FuncId FI = 0; FI < P.Funcs.size(); ++FI) {
    const Function &F = P.Funcs[FI];
    for (BlockId B = 0; B < F.Blocks.size(); ++B) {
      const BasicBlock &BB = F.Blocks[B];
      auto AddTail = [&](const Jump &J, uint8_t Which) {
        if (J.K == Jump::Tail && J.Fn < P.Funcs.size())
          Sites[J.Fn].push_back({FI, B, Which});
      };
      if (BB.K == BasicBlock::Cond) {
        AddTail(BB.J1, 1);
        AddTail(BB.J2, 2);
      } else if (BB.K == BasicBlock::Cmd) {
        AddTail(BB.J, 0);
        if ((BB.C.K == Command::Call || BB.C.K == Command::Alloc) &&
            BB.C.Fn < P.Funcs.size())
          HasNonTailRef[BB.C.Fn] = true;
      }
    }
  }
}

/// Parameter indices of \p Callee that may not be dropped because some
/// read-tail site substitutes its read destination there (the VM and the
/// translation need the placeholder slot to receive the read value).
std::vector<bool> substProtected(const Program &P, FuncId Callee,
                                 const std::vector<TailSite> &Sites) {
  std::vector<bool> Protected(P.Funcs[Callee].NumParams, false);
  for (const TailSite &S : Sites) {
    const BasicBlock &B = P.Funcs[S.Caller].Blocks[S.Block];
    if (S.Which != 0 || B.K != BasicBlock::Cmd || B.C.K != Command::Read)
      continue;
    const Jump &J = B.J;
    for (size_t I = 0; I < J.Args.size() && I < Protected.size(); ++I)
      if (J.Args[I] == B.C.Dst)
        Protected[I] = true;
  }
  return Protected;
}

/// Drops the parameters listed in \p Drop (ascending) from \p Callee,
/// demoting them to locals, and erases the matching argument at every
/// tail site. If \p RematConsts is non-null, prepends one entry block
/// per dropped parameter assigning its rematerialized constant.
void dropParams(Program &P, FuncId Callee, const std::vector<TailSite> &Sites,
                const std::vector<uint32_t> &Drop,
                const std::map<uint32_t, int64_t> *RematConsts) {
  Function &F = P.Funcs[Callee];
  std::vector<bool> Dropped(F.NumParams, false);
  for (uint32_t I : Drop)
    Dropped[I] = true;

  // New variable order: kept parameters first (original relative
  // order), then everything else (dropped parameters become locals).
  std::vector<VarId> Map(F.Vars.size());
  std::vector<Variable> NewVars;
  NewVars.reserve(F.Vars.size());
  for (VarId V = 0; V < F.NumParams; ++V)
    if (!Dropped[V]) {
      Map[V] = static_cast<VarId>(NewVars.size());
      NewVars.push_back(F.Vars[V]);
    }
  uint32_t NewNumParams = static_cast<uint32_t>(NewVars.size());
  for (VarId V = 0; V < F.Vars.size(); ++V)
    if (V >= F.NumParams || Dropped[V]) {
      Map[V] = static_cast<VarId>(NewVars.size());
      NewVars.push_back(F.Vars[V]);
    }

  for (BasicBlock &B : F.Blocks)
    remapBlockVars(B, Map);

  // Rematerialize constants in fresh entry blocks (chained assigns; the
  // last one falls through to the old entry).
  BlockId Delta = RematConsts && !RematConsts->empty()
                      ? static_cast<BlockId>(RematConsts->size())
                      : 0;
  if (Delta != 0) {
    for (BasicBlock &B : F.Blocks)
      shiftGotoTargets(B, Delta);
    std::vector<BasicBlock> Entry;
    BlockId Next = 1;
    for (const auto &[OldParam, Value] : *RematConsts) {
      BasicBlock B;
      B.K = BasicBlock::Cmd;
      B.Label = "cp" + std::to_string(OldParam) + "_" +
                F.Vars[OldParam].Name;
      B.C.K = Command::Assign;
      B.C.Dst = Map[OldParam];
      B.C.E = Expr::makeConst(Value);
      B.J = Jump::gotoBlock(Next++);
      Entry.push_back(std::move(B));
    }
    F.Blocks.insert(F.Blocks.begin(), Entry.begin(), Entry.end());
  }

  F.Vars = std::move(NewVars);
  F.NumParams = NewNumParams;

  // Erase the dropped arguments at every tail site (descending index so
  // earlier erasures do not shift later ones). Sites were collected
  // before the remat entry blocks were inserted, so a self-recursive
  // site (Caller == Callee) now lives Delta blocks later.
  for (const TailSite &S : Sites) {
    TailSite Adj = S;
    if (Adj.Caller == Callee)
      Adj.Block += Delta;
    Jump &J = siteJump(P, Adj);
    for (auto It = Drop.rbegin(); It != Drop.rend(); ++It)
      if (*It < J.Args.size())
        J.Args.erase(J.Args.begin() + *It);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

size_t optimize::readTailEnvWords(const Program &P) {
  size_t Words = 0;
  for (const Function &F : P.Funcs)
    for (const BasicBlock &B : F.Blocks)
      if (B.K == BasicBlock::Cmd && B.C.K == Command::Read &&
          B.J.K == Jump::Tail)
        Words += B.J.Args.size();
  return Words;
}

OptStats optimize::optimizeProgram(Program &P) {
  OptStats Stats;
  for (int Round = 0; Round < 8; ++Round)
    if (applyRedundancy(P, Stats) == 0)
      break;
  return Stats;
}

OptStats optimize::slimClosures(Program &P, FuncId FirstInternal) {
  OptStats Stats;
  Stats.ReadEnvWordsBefore = readTailEnvWords(P);

  // Each structural rewrite consumes one round (sites go stale); the
  // cap bounds pathological inputs, not realistic ones.
  for (int Round = 0; Round < 256; ++Round) {
    bool Changed = false;

    std::vector<std::vector<TailSite>> Sites;
    std::vector<bool> HasNonTailRef;
    collectSites(P, Sites, HasNonTailRef);

    // Reaching definitions per caller, computed on demand.
    std::map<FuncId, ReachingDefs> RDCache;
    auto CallerRD = [&](FuncId F) -> const ReachingDefs & {
      auto It = RDCache.find(F);
      if (It == RDCache.end())
        It = RDCache.emplace(F, computeReachingDefs(P.Funcs[F])).first;
      return It->second;
    };

    for (FuncId Callee = FirstInternal; Callee < P.Funcs.size(); ++Callee) {
      Function &F = P.Funcs[Callee];
      if (F.NumParams == 0 || Sites[Callee].empty() ||
          HasNonTailRef[Callee])
        continue;
      std::vector<bool> Protected =
          substProtected(P, Callee, Sites[Callee]);

      // Used variables of the callee body.
      BitVec Used(F.Vars.size());
      for (BlockId B = 0; B < F.Blocks.size(); ++B)
        for (VarId V : blockUses(F, B))
          Used.set(V);

      // Constant-argument rematerialization: every site passes the same
      // integer constant.
      std::map<uint32_t, int64_t> Remat;
      std::vector<uint32_t> DropDead;
      for (uint32_t I = 0; I < F.NumParams; ++I) {
        if (Protected[I])
          continue;
        if (!Used.test(I)) {
          DropDead.push_back(I);
          continue;
        }
        if (F.Vars[I].Ty.Indirection != 0 ||
            F.Vars[I].Ty.Base != Type::Int)
          continue;
        std::optional<int64_t> Common;
        bool Ok = true;
        for (const TailSite &S : Sites[Callee]) {
          const Jump &J = siteJump(P, S);
          if (I >= J.Args.size()) {
            Ok = false;
            break;
          }
          std::optional<int64_t> C = constantAtExit(
              P.Funcs[S.Caller], CallerRD(S.Caller), S.Block, J.Args[I]);
          if (!C || (Common && *Common != *C)) {
            Ok = false;
            break;
          }
          Common = C;
        }
        if (Ok && Common)
          Remat[I] = *Common;
      }

      if (Remat.empty() && DropDead.empty())
        continue;

      std::vector<uint32_t> Drop = DropDead;
      for (const auto &[I, V] : Remat) {
        (void)V;
        Drop.push_back(I);
      }
      std::sort(Drop.begin(), Drop.end());
      dropParams(P, Callee, Sites[Callee], Drop,
                 Remat.empty() ? nullptr : &Remat);
      Stats.ConstArgsRemat += Remat.size();
      Stats.ParamsPruned += DropDead.size();
      Changed = true;
      // Sites and caches are stale after a rewrite; restart the scan.
      break;
    }

    // Cleanup between structural rounds: rematerialized arguments often
    // leave dead assigns in callers, which in turn expose dead params.
    if (!Changed) {
      if (applyRedundancy(P, Stats) == 0)
        break;
      Changed = true;
    }
  }

  Stats.ReadEnvWordsAfter = readTailEnvWords(P);
  return Stats;
}

PipelineResult optimize::runPassPipeline(const Program &In) {
  PipelineResult R;
  Program P = In;
  R.Pre = optimizeProgram(P);
  FuncId FirstInternal = static_cast<FuncId>(P.Funcs.size());
  normalize::NormalizeResult NR = normalize::normalizeProgram(P);
  R.NStats = NR.Stats;
  R.Prog = std::move(NR.Prog);
  R.Post = slimClosures(R.Prog, FirstInternal);
  return R;
}
