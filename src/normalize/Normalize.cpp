//===- normalize/Normalize.cpp - The NORMALIZE transformation --------------===//

#include "normalize/Normalize.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/ProgramGraph.h"
#include "cl/Verifier.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace ceal;
using namespace ceal::normalize;
using namespace ceal::cl;
using namespace ceal::analysis;

namespace {

/// Per-function normalization plan.
struct FuncPlan {
  /// Unit assignment: for each block, the defining node of its unit
  /// (ProgramGraph node id), or InvalidNode if unreachable.
  std::vector<uint32_t> UnitOf;
  /// Critical defining blocks (ascending BlockId).
  std::vector<BlockId> CriticalBlocks;
  /// Fresh function id assigned to each critical block.
  std::map<BlockId, FuncId> FreshId;
  /// live(l) for each critical block, ascending VarId.
  std::map<BlockId, std::vector<VarId>> LiveArgs;
  LivenessInfo Live;
};

class Normalizer {
public:
  explicit Normalizer(const Program &P) : In(P) {}

  NormalizeResult run() {
    Stats.InputBlocks = In.blockCount();
    Stats.InputWords = In.sizeInWords();
    plan();
    emit();
    Stats.OutputBlocks = Out.blockCount();
    Stats.OutputWords = Out.sizeInWords();
    return {std::move(Out), Stats};
  }

private:
  //===------------------------------------------------------------===//
  // Planning: units, liveness, fresh function ids
  //===------------------------------------------------------------===//

  void plan() {
    Plans.resize(In.Funcs.size());
    FuncId NextId = static_cast<FuncId>(In.Funcs.size());
    std::set<std::string> UsedNames;
    for (const Function &F : In.Funcs)
      UsedNames.insert(F.Name);
    FreshNames.clear();

    for (FuncId FI = 0; FI < In.Funcs.size(); ++FI) {
      const Function &F = In.Funcs[FI];
      FuncPlan &Plan = Plans[FI];
      ProgramGraph G = buildProgramGraph(F);
      RootedGraph RG = RootedGraph::fromProgramGraph(G);
      std::vector<uint32_t> Idom = computeDominatorsIterative(RG);
      auto Children = dominatorTreeChildren(Idom, ProgramGraph::Root);
      Plan.Live = computeLiveness(F);
      Stats.MaxLive = std::max(Stats.MaxLive, Plan.Live.maxLive());

      // Assign every node to the unit of its root-child ancestor.
      Plan.UnitOf.assign(G.size(), InvalidNode);
      for (uint32_t Child : Children[ProgramGraph::Root]) {
        // DFS over the dominator tree.
        std::vector<uint32_t> Stack{Child};
        while (!Stack.empty()) {
          uint32_t N = Stack.back();
          Stack.pop_back();
          Plan.UnitOf[N] = Child;
          for (uint32_t C : Children[N])
            Stack.push_back(C);
        }
      }

      // Critical defining nodes are root children that are blocks.
      // Process them in ascending block order so fresh ids and names
      // stay aligned with the emission order.
      for (uint32_t Child : Children[ProgramGraph::Root])
        if (ProgramGraph::isBlockNode(Child))
          Plan.CriticalBlocks.push_back(ProgramGraph::nodeBlock(Child));
      std::sort(Plan.CriticalBlocks.begin(), Plan.CriticalBlocks.end());
      for (BlockId B : Plan.CriticalBlocks) {
        Plan.FreshId[B] = NextId++;
        Plan.LiveArgs[B] = Plan.Live.liveAt(B);
        // A unique, parseable fresh name.
        std::string Name = F.Name + "_rn_" + F.Blocks[B].Label;
        while (UsedNames.count(Name))
          Name += "_";
        UsedNames.insert(Name);
        FreshNames.push_back(Name);
      }
    }
    Stats.FreshFunctions = FreshNames.size();
  }

  //===------------------------------------------------------------===//
  // Emission
  //===------------------------------------------------------------===//

  /// Blocks of the unit defined by graph node \p Defining in function
  /// \p FI, defining block first, others in ascending order.
  std::vector<BlockId> unitBlocks(FuncId FI, uint32_t Defining) const {
    const FuncPlan &Plan = Plans[FI];
    std::vector<BlockId> Blocks;
    for (BlockId B = 0; B < In.Funcs[FI].Blocks.size(); ++B)
      if (Plan.UnitOf[ProgramGraph::blockNode(B)] == Defining)
        Blocks.push_back(B);
    if (ProgramGraph::isBlockNode(Defining)) {
      BlockId D = ProgramGraph::nodeBlock(Defining);
      auto It = std::find(Blocks.begin(), Blocks.end(), D);
      assert(It != Blocks.end() && "defining block missing from its unit");
      std::rotate(Blocks.begin(), It, It + 1);
    }
    return Blocks;
  }

  /// Rewrites jump \p J from block \p From (in unit \p FromUnit) of
  /// function \p FI, given the block and variable remaps of the unit
  /// being emitted.
  Jump rewriteJump(FuncId FI, const Jump &J, uint32_t FromUnit, bool FromRead,
                   const std::map<BlockId, BlockId> &BlockMap,
                   const std::map<VarId, VarId> &VarMap) {
    const FuncPlan &Plan = Plans[FI];
    if (J.K == Jump::Tail) {
      Jump Copy = J;
      for (VarId &V : Copy.Args)
        V = VarMap.at(V);
      return Copy;
    }
    BlockId Target = J.Target;
    uint32_t TargetUnit = Plan.UnitOf[ProgramGraph::blockNode(Target)];
    bool TargetCritical = ProgramGraph::isBlockNode(TargetUnit) &&
                          ProgramGraph::nodeBlock(TargetUnit) == Target;
    bool CrossUnit = TargetUnit != FromUnit;
    assert((!CrossUnit || TargetCritical) &&
           "cross-unit edge into a non-defining node (violates Lemma 2)");
    if (TargetCritical && (CrossUnit || FromRead)) {
      // Redirect into the fresh function (Fig. 7 lines 20-29).
      Jump T;
      T.K = Jump::Tail;
      T.Fn = Plan.FreshId.at(Target);
      for (VarId V : Plan.LiveArgs.at(Target))
        T.Args.push_back(VarMap.at(V));
      return T;
    }
    // Intra-unit, non-read edge: stays a goto (remapped).
    Jump Copy;
    Copy.K = Jump::Goto;
    Copy.Target = BlockMap.at(Target);
    return Copy;
  }

  /// Copies unit blocks into \p OutF with variable/block remapping and
  /// edge redirection.
  void emitUnitBlocks(FuncId FI, uint32_t Unit,
                      const std::vector<BlockId> &Blocks,
                      const std::map<VarId, VarId> &VarMap, Function &OutF) {
    std::map<BlockId, BlockId> BlockMap;
    for (size_t I = 0; I < Blocks.size(); ++I)
      BlockMap[Blocks[I]] = static_cast<BlockId>(I);
    const Function &F = In.Funcs[FI];
    for (BlockId B : Blocks) {
      const BasicBlock &BB = F.Blocks[B];
      BasicBlock NewBB;
      NewBB.Label = BB.Label;
      NewBB.K = BB.K;
      switch (BB.K) {
      case BasicBlock::Done:
        break;
      case BasicBlock::Cond:
        NewBB.CondVar = VarMap.at(BB.CondVar);
        NewBB.J1 = rewriteJump(FI, BB.J1, Unit, false, BlockMap, VarMap);
        NewBB.J2 = rewriteJump(FI, BB.J2, Unit, false, BlockMap, VarMap);
        break;
      case BasicBlock::Cmd: {
        NewBB.C = remapCommand(BB.C, VarMap);
        bool IsRead = BB.C.K == Command::Read;
        NewBB.J = rewriteJump(FI, BB.J, Unit, IsRead, BlockMap, VarMap);
        break;
      }
      }
      OutF.Blocks.push_back(std::move(NewBB));
    }
  }

  static Command remapCommand(const Command &C,
                              const std::map<VarId, VarId> &VarMap) {
    auto MapVar = [&](VarId V) {
      return V == InvalidId ? InvalidId : VarMap.at(V);
    };
    Command N = C;
    N.Dst = MapVar(C.Dst);
    N.Base = MapVar(C.Base);
    N.Idx = MapVar(C.Idx);
    N.Src = MapVar(C.Src);
    N.Ref = MapVar(C.Ref);
    N.Val = MapVar(C.Val);
    N.SizeVar = MapVar(C.SizeVar);
    for (VarId &V : N.Args)
      V = MapVar(V);
    switch (N.E.K) {
    case Expr::Const:
      break;
    case Expr::Var:
      N.E.V = MapVar(C.E.V);
      break;
    case Expr::Prim:
      for (VarId &V : N.E.Args)
        V = MapVar(V);
      break;
    case Expr::Index:
      N.E.V = MapVar(C.E.V);
      N.E.Idx = MapVar(C.E.Idx);
      break;
    }
    return N;
  }

  void emit() {
    // Original functions keep their ids; fresh functions are appended in
    // planning order.
    Out.Funcs.resize(In.Funcs.size() + FreshNames.size());

    size_t FreshIndex = 0;
    for (FuncId FI = 0; FI < In.Funcs.size(); ++FI) {
      const Function &F = In.Funcs[FI];
      const FuncPlan &Plan = Plans[FI];

      // The original function keeps its full variable table; identity
      // variable map.
      std::map<VarId, VarId> Identity;
      for (VarId V = 0; V < F.Vars.size(); ++V)
        Identity[V] = V;

      Function &OutF = Out.Funcs[FI];
      OutF.Name = F.Name;
      OutF.Vars = F.Vars;
      OutF.NumParams = F.NumParams;
      std::vector<BlockId> FnUnit = unitBlocks(FI, ProgramGraph::FuncNode);
      if (!FnUnit.empty() && FnUnit.front() == 0) {
        emitUnitBlocks(FI, ProgramGraph::FuncNode, FnUnit, Identity, OutF);
      } else {
        // The entry block is itself a read entry, so the function body
        // is a single jump into the fresh function that holds it.
        assert(Plan.FreshId.count(0) &&
               "entry block neither in the function unit nor critical");
        BasicBlock Entry;
        Entry.Label = F.Name + "_entry";
        Entry.K = BasicBlock::Cmd;
        Entry.C = Command(); // nop
        Entry.J.K = Jump::Tail;
        Entry.J.Fn = Plan.FreshId.at(0);
        Entry.J.Args = Plan.LiveArgs.at(0);
        OutF.Blocks.push_back(std::move(Entry));
        // Any other blocks in the function-node unit are unreachable
        // from the entry; they are dropped.
      }

      // Fresh functions, one per critical block.
      for (BlockId B : Plan.CriticalBlocks) {
        FuncId Id = Plan.FreshId.at(B);
        Function &NewF = Out.Funcs[Id];
        NewF.Name = FreshNames[FreshIndex++];
        const std::vector<VarId> &Params = Plan.LiveArgs.at(B);

        uint32_t Unit = ProgramGraph::blockNode(B);
        std::vector<BlockId> Blocks = unitBlocks(FI, Unit);

        // Free variables of the unit (Fig. 7 line 14): everything the
        // unit's blocks mention; locals are those not already params.
        std::set<VarId> Free;
        for (BlockId UB : Blocks) {
          for (VarId V : blockUses(F, UB))
            Free.insert(V);
          for (VarId V : blockDefs(F, UB))
            Free.insert(V);
        }
        std::map<VarId, VarId> VarMap;
        for (VarId V : Params) {
          VarMap[V] = static_cast<VarId>(NewF.Vars.size());
          NewF.Vars.push_back(F.Vars[V]);
        }
        NewF.NumParams = static_cast<uint32_t>(Params.size());
        for (VarId V : Free) {
          if (VarMap.count(V))
            continue;
          VarMap[V] = static_cast<VarId>(NewF.Vars.size());
          NewF.Vars.push_back(F.Vars[V]);
        }
        emitUnitBlocks(FI, Unit, Blocks, VarMap, NewF);
      }
    }
  }

  const Program &In;
  Program Out;
  std::vector<FuncPlan> Plans;
  std::vector<std::string> FreshNames;
  NormalizeStats Stats;
};

} // namespace

NormalizeResult normalize::normalizeProgram(const Program &P) {
  assert(verifyProgram(P).empty() && "normalizing an ill-formed program");
  NormalizeResult R = Normalizer(P).run();
  assert(isNormalForm(R.Prog) && "NORMALIZE failed to reach normal form");
  return R;
}
