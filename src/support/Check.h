//===- support/Check.h - Unconditional runtime checks ----------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hard-failure helpers for limits that must hold in every build type.
/// assert() documents internal invariants and may be compiled out of
/// Release builds (see the CEAL_EXPENSIVE_CHECKS CMake option); the
/// checks here guard narrowing limits whose violation would silently
/// corrupt the trace — e.g. a closure arity truncated to 16 bits or an
/// allocation size truncated to 32 — so they are never elided.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_CHECK_H
#define CEAL_SUPPORT_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace ceal {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable usage
/// errors that must fail loudly in all build types.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "ceal fatal error: %s\n", Msg);
  std::fflush(stderr);
  std::abort();
}

/// Aborts with \p Msg unless \p Cond holds — in every build type,
/// including Release with CEAL_EXPENSIVE_CHECKS=OFF.
inline void checkAlways(bool Cond, const char *Msg) {
  if (!Cond)
    fatalError(Msg);
}

} // namespace ceal

#endif // CEAL_SUPPORT_CHECK_H
