//===- support/Arena.cpp - Bump arena with size-class freelists ----------===//

#include "support/Arena.h"

#include <cstdlib>
#include <new>

using namespace ceal;

Arena::~Arena() {
  Chunk *C = Chunks;
  while (C) {
    Chunk *Next = C->Next;
    ::operator delete(C);
    C = Next;
  }
}

void *Arena::allocate(size_t Size) {
  assert(Size > 0 && "zero-size allocation");
  ++AllocCount;
  if (Size > MaxSmallSize) {
    LiveBytes += Size;
    TotalAllocated += Size;
    if (LiveBytes > MaxLiveBytes)
      MaxLiveBytes = LiveBytes;
    return ::operator new(Size);
  }
  size_t Index = classIndex(Size);
  size_t Rounded = classSize(Index);
  LiveBytes += Rounded;
  TotalAllocated += Rounded;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
  if (FreeCell *Cell = FreeLists[Index]) {
    FreeLists[Index] = Cell->Next;
    return Cell;
  }
  if (BumpPtr + Rounded <= BumpEnd) {
    void *Result = BumpPtr;
    BumpPtr += Rounded;
    return Result;
  }
  return allocateSlow(Rounded);
}

void *Arena::allocateSlow(size_t RoundedSize) {
  auto *C = static_cast<Chunk *>(::operator new(ChunkSize));
  C->Next = Chunks;
  Chunks = C;
  char *Base = reinterpret_cast<char *>(C) + Alignment;
  BumpPtr = Base;
  BumpEnd = reinterpret_cast<char *>(C) + ChunkSize;
  assert(BumpPtr + RoundedSize <= BumpEnd && "chunk too small for class");
  void *Result = BumpPtr;
  BumpPtr += RoundedSize;
  return Result;
}

void Arena::deallocate(void *Ptr, size_t Size) {
  assert(Ptr && "deallocating null");
  if (Size > MaxSmallSize) {
    assert(LiveBytes >= Size && "freelist accounting underflow");
    LiveBytes -= Size;
    ::operator delete(Ptr);
    return;
  }
  size_t Index = classIndex(Size);
  size_t Rounded = classSize(Index);
  assert(LiveBytes >= Rounded && "freelist accounting underflow");
  LiveBytes -= Rounded;
  auto *Cell = static_cast<FreeCell *>(Ptr);
  Cell->Next = FreeLists[Index];
  FreeLists[Index] = Cell;
}
