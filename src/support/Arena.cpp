//===- support/Arena.cpp - Region arena with 32-bit handles --------------===//

#include "support/Arena.h"
#include "support/Check.h"

#include <sys/mman.h>
#include <unistd.h>

using namespace ceal;

Arena::Arena(size_t Bytes) {
  checkAlways(Bytes > 0 && Bytes <= MaxRegionBytes,
              "Arena region size out of range");
  // Reserve address space only: MAP_NORESERVE defers physical pages to
  // first touch, so an 8 GB default region costs nothing until used. If
  // the kernel refuses (strict overcommit, tiny address space), back off
  // geometrically — a smaller region just means a lower handle ceiling.
  constexpr size_t FloorBytes = size_t(256) << 20;
  size_t Attempt = Bytes;
  void *Mapped = MAP_FAILED;
  for (;;) {
    Mapped = ::mmap(nullptr, Attempt, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (Mapped != MAP_FAILED || Attempt <= FloorBytes || Attempt <= Bytes / 64)
      break;
    Attempt /= 2;
  }
  checkAlways(Mapped != MAP_FAILED, "Arena region mmap failed");
  Base = static_cast<char *>(Mapped);
  RegionBytes = Attempt;
  // Offset 0 encodes the null handle; the first block starts one grain in.
  BumpPtr = Base + HandleGrain;
  BumpEnd = Base + RegionBytes;
}

Arena::~Arena() {
  if (Base)
    ::munmap(Base, RegionBytes);
}

void *Arena::allocateLarge(size_t Size) {
  size_t Rounded = accountedSize(Size);
  LiveBytes += Rounded;
  TotalAllocated += Rounded;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
  auto It = LargeFree.find(Rounded);
  if (It != LargeFree.end() && It->second) {
    FreeCell *Cell = It->second;
    It->second = Cell->Next;
    return Cell;
  }
  char *Result = BumpPtr;
  if (Result + Rounded > BumpEnd)
    regionExhausted();
  BumpPtr = Result + Rounded;
  return Result;
}

void Arena::deallocateLarge(void *Ptr, size_t Size) {
  size_t Rounded = accountedSize(Size);
  assert(LiveBytes >= Rounded && "freelist accounting underflow");
  LiveBytes -= Rounded;
  auto *Cell = static_cast<FreeCell *>(Ptr);
  FreeCell *&Head = LargeFree[Rounded];
  Cell->Next = Head;
  Head = Cell;
}

void Arena::regionExhausted() const {
  fatalError("Arena region exhausted: trace outgrew the 32-bit handle "
             "space (construct the Arena with a larger region, up to "
             "Arena::MaxRegionBytes)");
}

bool Arena::remapTo(char *WantBase, size_t WantBytes) {
  checkAlways(WantBytes > 0 && WantBytes <= MaxRegionBytes,
              "Arena remap size out of range");
#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0
#endif
  constexpr int Prot = PROT_READ | PROT_WRITE;
  constexpr int Flags =
      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED_NOREPLACE;
  // First try with the current region still mapped; if the kernel refuses
  // (possibly because our own region overlaps the target), release ours
  // and retry once.
  void *Got = ::mmap(WantBase, WantBytes, Prot, Flags, -1, 0);
  if (Got == MAP_FAILED) {
    ::munmap(Base, RegionBytes);
    Base = nullptr;
    Got = ::mmap(WantBase, WantBytes, Prot, Flags, -1, 0);
  } else {
    ::munmap(Base, RegionBytes);
    Base = nullptr;
  }
  // Kernels without MAP_FIXED_NOREPLACE treat the request as a hint and
  // may map elsewhere; that is a failed claim, not a success.
  if (Got != MAP_FAILED && Got != WantBase) {
    ::munmap(Got, WantBytes);
    Got = MAP_FAILED;
  }
  bool Claimed = Got != MAP_FAILED;
  if (!Claimed) {
    // Re-acquire an empty region anywhere so the arena stays usable.
    Got = ::mmap(nullptr, RegionBytes, Prot,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    checkAlways(Got != MAP_FAILED, "Arena region mmap failed");
  } else {
    RegionBytes = WantBytes;
  }
  Base = static_cast<char *>(Got);
  BumpPtr = Base + HandleGrain;
  BumpEnd = Base + RegionBytes;
  for (FreeCell *&Head : FreeLists)
    Head = nullptr;
  LargeFree.clear();
  LiveBytes = MaxLiveBytes = TotalAllocated = AllocCount = 0;
  return Claimed;
}

bool Arena::mapFilePrefix(int Fd, uint64_t FileOffset, size_t Bytes) {
  size_t Page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  checkAlways(FileOffset % Page == 0, "file offset not page-aligned");
  checkAlways(Bytes <= RegionBytes, "file prefix exceeds the region");
  size_t MapLen = (Bytes + Page - 1) & ~(Page - 1);
  if (MapLen == 0)
    return true;
  void *Got = ::mmap(Base, MapLen, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_FIXED | MAP_NORESERVE, Fd,
                     static_cast<off_t>(FileOffset));
  return Got == Base;
}

void Arena::reserve(size_t Bytes) {
  // One contiguous region exists from construction; a reservation can
  // only check that the burst will fit below the handle ceiling.
  if (static_cast<size_t>(BumpEnd - BumpPtr) < Bytes)
    regionExhausted();
}
