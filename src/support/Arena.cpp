//===- support/Arena.cpp - Region arena with 32-bit handles --------------===//

#include "support/Arena.h"
#include "support/Check.h"

#include <sys/mman.h>

using namespace ceal;

Arena::Arena(size_t Bytes) {
  checkAlways(Bytes > 0 && Bytes <= MaxRegionBytes,
              "Arena region size out of range");
  // Reserve address space only: MAP_NORESERVE defers physical pages to
  // first touch, so an 8 GB default region costs nothing until used. If
  // the kernel refuses (strict overcommit, tiny address space), back off
  // geometrically — a smaller region just means a lower handle ceiling.
  constexpr size_t FloorBytes = size_t(256) << 20;
  size_t Attempt = Bytes;
  void *Mapped = MAP_FAILED;
  for (;;) {
    Mapped = ::mmap(nullptr, Attempt, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (Mapped != MAP_FAILED || Attempt <= FloorBytes || Attempt <= Bytes / 64)
      break;
    Attempt /= 2;
  }
  checkAlways(Mapped != MAP_FAILED, "Arena region mmap failed");
  Base = static_cast<char *>(Mapped);
  RegionBytes = Attempt;
  // Offset 0 encodes the null handle; the first block starts one grain in.
  BumpPtr = Base + HandleGrain;
  BumpEnd = Base + RegionBytes;
}

Arena::~Arena() {
  if (Base)
    ::munmap(Base, RegionBytes);
}

void *Arena::allocateLarge(size_t Size) {
  size_t Rounded = accountedSize(Size);
  LiveBytes += Rounded;
  TotalAllocated += Rounded;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
  auto It = LargeFree.find(Rounded);
  if (It != LargeFree.end() && It->second) {
    FreeCell *Cell = It->second;
    It->second = Cell->Next;
    return Cell;
  }
  char *Result = BumpPtr;
  if (Result + Rounded > BumpEnd)
    regionExhausted();
  BumpPtr = Result + Rounded;
  return Result;
}

void Arena::deallocateLarge(void *Ptr, size_t Size) {
  size_t Rounded = accountedSize(Size);
  assert(LiveBytes >= Rounded && "freelist accounting underflow");
  LiveBytes -= Rounded;
  auto *Cell = static_cast<FreeCell *>(Ptr);
  FreeCell *&Head = LargeFree[Rounded];
  Cell->Next = Head;
  Head = Cell;
}

void Arena::regionExhausted() const {
  fatalError("Arena region exhausted: trace outgrew the 32-bit handle "
             "space (construct the Arena with a larger region, up to "
             "Arena::MaxRegionBytes)");
}

void Arena::reserve(size_t Bytes) {
  // One contiguous region exists from construction; a reservation can
  // only check that the burst will fit below the handle ceiling.
  if (static_cast<size_t>(BumpEnd - BumpPtr) < Bytes)
    regionExhausted();
}
