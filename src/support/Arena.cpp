//===- support/Arena.cpp - Region arena with 32-bit handles --------------===//

#include "support/Arena.h"
#include "support/Check.h"

#include <sys/mman.h>
#include <unistd.h>

using namespace ceal;

Arena::Arena(size_t Bytes) {
  checkAlways(Bytes > 0 && Bytes <= MaxRegionBytes,
              "Arena region size out of range");
  // Reserve address space only: MAP_NORESERVE defers physical pages to
  // first touch, so an 8 GB default region costs nothing until used. If
  // the kernel refuses (strict overcommit, tiny address space), back off
  // geometrically — a smaller region just means a lower handle ceiling.
  constexpr size_t FloorBytes = size_t(256) << 20;
  size_t Attempt = Bytes;
  void *Mapped = MAP_FAILED;
  for (;;) {
    Mapped = ::mmap(nullptr, Attempt, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (Mapped != MAP_FAILED || Attempt <= FloorBytes || Attempt <= Bytes / 64)
      break;
    Attempt /= 2;
  }
  checkAlways(Mapped != MAP_FAILED, "Arena region mmap failed");
  Base = static_cast<char *>(Mapped);
  RegionBytes = Attempt;
  // Offset 0 encodes the null handle; the first block starts one grain in.
  BumpPtr = Base + HandleGrain;
  BumpEnd = Base + RegionBytes;
}

Arena::~Arena() {
  if (Base)
    ::munmap(Base, RegionBytes);
}

void *Arena::allocateLarge(size_t Size) {
  size_t Rounded = accountedSize(Size);
  LiveBytes += Rounded;
  TotalAllocated += Rounded;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
  auto It = LargeFree.find(Rounded);
  if (It != LargeFree.end() && It->second) {
    FreeCell *Cell = It->second;
    It->second = Cell->Next;
    return Cell;
  }
  char *Result = BumpPtr;
  if (Result + Rounded > BumpEnd)
    regionExhausted();
  BumpPtr = Result + Rounded;
  return Result;
}

void Arena::deallocateLarge(void *Ptr, size_t Size) {
  size_t Rounded = accountedSize(Size);
  assert(LiveBytes >= Rounded && "freelist accounting underflow");
  LiveBytes -= Rounded;
  auto *Cell = static_cast<FreeCell *>(Ptr);
  FreeCell *&Head = LargeFree[Rounded];
  Cell->Next = Head;
  Head = Cell;
}

void *Arena::allocateSharded(size_t Size) {
  int Id = ShardTls;
  if (__builtin_expect(Id < 0, 0)) {
    // Not a bound worker (an allocation raced in from the meta thread
    // while shard mode was armed): serialize on the central structures.
    SpinLockGuard G(CentralLock);
    ++AllocCount;
    if (Size > MaxSmallSize)
      return allocateLarge(Size);
    size_t Index = classIndex(Size);
    size_t Rounded = classSize(Index);
    LiveBytes += Rounded;
    TotalAllocated += Rounded;
    if (LiveBytes > MaxLiveBytes)
      MaxLiveBytes = LiveBytes;
    if (FreeCell *Cell = FreeLists[Index]) {
      FreeLists[Index] = Cell->Next;
      return Cell;
    }
    char *Result = BumpPtr;
    if (Result + Rounded > BumpEnd)
      regionExhausted();
    BumpPtr = Result + Rounded;
    return Result;
  }
  assert(unsigned(Id) < ActiveShards && "shard id out of range");
  Shard &S = Shards[Id];
  ++S.AllocDelta;
  if (Size > MaxSmallSize) {
    SpinLockGuard G(CentralLock);
    return allocateLarge(Size);
  }
  size_t Index = classIndex(Size);
  size_t Rounded = classSize(Index);
  S.LiveDelta += int64_t(Rounded);
  S.TotalDelta += Rounded;
  if (FreeCell *Cell = S.Free[Index]) {
    S.Free[Index] = Cell->Next;
    if (!S.Free[Index])
      S.FreeTail[Index] = nullptr;
    return Cell;
  }
  char *Result = S.BumpPtr;
  if (!Result || Result + Rounded > S.BumpEnd) {
    refillShard(S, Rounded);
    Result = S.BumpPtr;
  }
  S.BumpPtr = Result + Rounded;
  return Result;
}

void Arena::deallocateSharded(void *Ptr, size_t Size) {
  int Id = ShardTls;
  if (__builtin_expect(Id < 0, 0)) {
    SpinLockGuard G(CentralLock);
    if (Size > MaxSmallSize)
      return deallocateLarge(Ptr, Size);
    size_t Index = classIndex(Size);
    size_t Rounded = classSize(Index);
    assert(LiveBytes >= Rounded && "freelist accounting underflow");
    LiveBytes -= Rounded;
    auto *Cell = static_cast<FreeCell *>(Ptr);
    Cell->Next = FreeLists[Index];
    FreeLists[Index] = Cell;
    return;
  }
  assert(unsigned(Id) < ActiveShards && "shard id out of range");
  Shard &S = Shards[Id];
  if (Size > MaxSmallSize) {
    SpinLockGuard G(CentralLock);
    return deallocateLarge(Ptr, Size);
  }
  size_t Index = classIndex(Size);
  size_t Rounded = classSize(Index);
  S.LiveDelta -= int64_t(Rounded);
  auto *Cell = static_cast<FreeCell *>(Ptr);
  Cell->Next = S.Free[Index];
  if (!S.Free[Index])
    S.FreeTail[Index] = Cell;
  S.Free[Index] = Cell;
}

void Arena::refillShard(Shard &S, size_t Need) {
  // The abandoned tail of the previous chunk is < one size class (512 B)
  // per refill; chunks themselves persist across shard phases.
  size_t Chunk = ShardChunkBytes > Need ? ShardChunkBytes : Need;
  SpinLockGuard G(CentralLock);
  char *Result = BumpPtr;
  if (Result + Chunk > BumpEnd)
    regionExhausted();
  BumpPtr = Result + Chunk;
  S.BumpPtr = Result;
  S.BumpEnd = Result + Chunk;
}

void Arena::beginShards(unsigned N) {
  assert(!ShardMode && "shard mode already armed");
  assert(N >= 1 && N <= MaxShards && "shard count out of range");
  ActiveShards = N;
  for (unsigned I = 0; I < N; ++I) {
    Shard &S = Shards[I];
    for (size_t C = 0; C < NumClasses; ++C) {
      assert(!S.Free[C] && "shard freelist not merged by endShards");
      S.Free[C] = S.FreeTail[C] = nullptr;
    }
    S.LiveDelta = 0;
    S.TotalDelta = 0;
    S.AllocDelta = 0;
  }
  ShardMode = true;
}

void Arena::endShards() {
  assert(ShardMode && "shard mode not armed");
  ShardMode = false;
  for (unsigned I = 0; I < ActiveShards; ++I) {
    Shard &S = Shards[I];
    for (size_t C = 0; C < NumClasses; ++C) {
      if (!S.Free[C])
        continue;
      S.FreeTail[C]->Next = FreeLists[C];
      FreeLists[C] = S.Free[C];
      S.Free[C] = S.FreeTail[C] = nullptr;
    }
    LiveBytes = size_t(int64_t(LiveBytes) + S.LiveDelta);
    TotalAllocated += S.TotalDelta;
    AllocCount += S.AllocDelta;
    S.LiveDelta = 0;
    S.TotalDelta = 0;
    S.AllocDelta = 0;
  }
  ActiveShards = 0;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
}

void Arena::resetShards() {
  assert(!ShardMode && "cannot move the region while shard mode is armed");
  for (Shard &S : Shards) {
    for (size_t C = 0; C < NumClasses; ++C)
      S.Free[C] = S.FreeTail[C] = nullptr;
    S.BumpPtr = S.BumpEnd = nullptr;
    S.LiveDelta = 0;
    S.TotalDelta = 0;
    S.AllocDelta = 0;
  }
}

void Arena::regionExhausted() const {
  fatalError("Arena region exhausted: trace outgrew the 32-bit handle "
             "space (construct the Arena with a larger region, up to "
             "Arena::MaxRegionBytes)");
}

bool Arena::remapTo(char *WantBase, size_t WantBytes) {
  checkAlways(WantBytes > 0 && WantBytes <= MaxRegionBytes,
              "Arena remap size out of range");
#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0
#endif
  constexpr int Prot = PROT_READ | PROT_WRITE;
  constexpr int Flags =
      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED_NOREPLACE;
  // First try with the current region still mapped; if the kernel refuses
  // (possibly because our own region overlaps the target), release ours
  // and retry once.
  void *Got = ::mmap(WantBase, WantBytes, Prot, Flags, -1, 0);
  if (Got == MAP_FAILED) {
    ::munmap(Base, RegionBytes);
    Base = nullptr;
    Got = ::mmap(WantBase, WantBytes, Prot, Flags, -1, 0);
  } else {
    ::munmap(Base, RegionBytes);
    Base = nullptr;
  }
  // Kernels without MAP_FIXED_NOREPLACE treat the request as a hint and
  // may map elsewhere; that is a failed claim, not a success.
  if (Got != MAP_FAILED && Got != WantBase) {
    ::munmap(Got, WantBytes);
    Got = MAP_FAILED;
  }
  bool Claimed = Got != MAP_FAILED;
  if (!Claimed) {
    // Re-acquire an empty region anywhere so the arena stays usable.
    Got = ::mmap(nullptr, RegionBytes, Prot,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    checkAlways(Got != MAP_FAILED, "Arena region mmap failed");
  } else {
    RegionBytes = WantBytes;
  }
  Base = static_cast<char *>(Got);
  BumpPtr = Base + HandleGrain;
  BumpEnd = Base + RegionBytes;
  for (FreeCell *&Head : FreeLists)
    Head = nullptr;
  LargeFree.clear();
  LiveBytes = MaxLiveBytes = TotalAllocated = AllocCount = 0;
  resetShards(); // Shard chunks pointed into the released region.
  return Claimed;
}

bool Arena::mapFilePrefix(int Fd, uint64_t FileOffset, size_t Bytes) {
  size_t Page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  checkAlways(FileOffset % Page == 0, "file offset not page-aligned");
  checkAlways(Bytes <= RegionBytes, "file prefix exceeds the region");
  size_t MapLen = (Bytes + Page - 1) & ~(Page - 1);
  if (MapLen == 0)
    return true;
  void *Got = ::mmap(Base, MapLen, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_FIXED | MAP_NORESERVE, Fd,
                     static_cast<off_t>(FileOffset));
  return Got == Base;
}

void Arena::reserve(size_t Bytes) {
  // One contiguous region exists from construction; a reservation can
  // only check that the burst will fit below the handle ceiling.
  if (static_cast<size_t>(BumpEnd - BumpPtr) < Bytes)
    regionExhausted();
}
