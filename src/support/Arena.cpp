//===- support/Arena.cpp - Bump arena with size-class freelists ----------===//

#include "support/Arena.h"

#include <cstdlib>
#include <new>

using namespace ceal;

Arena::~Arena() {
  Chunk *C = Chunks;
  while (C) {
    Chunk *Next = C->Next;
    ::operator delete(C);
    C = Next;
  }
}

void *Arena::allocateLarge(size_t Size) {
  LiveBytes += Size;
  TotalAllocated += Size;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
  return ::operator new(Size);
}

void Arena::deallocateLarge(void *Ptr, size_t Size) {
  assert(LiveBytes >= Size && "freelist accounting underflow");
  LiveBytes -= Size;
  ::operator delete(Ptr);
}

void Arena::newChunk(size_t PayloadBytes) {
  auto *C = static_cast<Chunk *>(::operator new(Alignment + PayloadBytes));
  C->Next = Chunks;
  Chunks = C;
  BumpPtr = reinterpret_cast<char *>(C) + Alignment;
  BumpEnd = BumpPtr + PayloadBytes;
}

void *Arena::allocateSlow(size_t RoundedSize) {
  newChunk(NextChunkBytes - Alignment);
  // Refills grow geometrically so a large trace pays O(log bytes) chunk
  // allocations; the cap bounds the over-reserve at the trace's tail.
  if (NextChunkBytes < MaxChunkSize)
    NextChunkBytes *= 2;
  assert(BumpPtr + RoundedSize <= BumpEnd && "chunk too small for class");
  void *Result = BumpPtr;
  BumpPtr += RoundedSize;
  return Result;
}

void Arena::reserve(size_t Bytes) {
  if (static_cast<size_t>(BumpEnd - BumpPtr) >= Bytes)
    return;
  newChunk(Bytes);
}

