//===- support/Arena.cpp - Bump arena with size-class freelists ----------===//

#include "support/Arena.h"

#include <cstdlib>
#include <new>

using namespace ceal;

Arena::~Arena() {
  Chunk *C = Chunks;
  while (C) {
    Chunk *Next = C->Next;
    ::operator delete(C);
    C = Next;
  }
}

void *Arena::allocateLarge(size_t Size) {
  LiveBytes += Size;
  TotalAllocated += Size;
  if (LiveBytes > MaxLiveBytes)
    MaxLiveBytes = LiveBytes;
  return ::operator new(Size);
}

void Arena::deallocateLarge(void *Ptr, size_t Size) {
  assert(LiveBytes >= Size && "freelist accounting underflow");
  LiveBytes -= Size;
  ::operator delete(Ptr);
}

void *Arena::allocateSlow(size_t RoundedSize) {
  auto *C = static_cast<Chunk *>(::operator new(ChunkSize));
  C->Next = Chunks;
  Chunks = C;
  char *Base = reinterpret_cast<char *>(C) + Alignment;
  BumpPtr = Base;
  BumpEnd = reinterpret_cast<char *>(C) + ChunkSize;
  assert(BumpPtr + RoundedSize <= BumpEnd && "chunk too small for class");
  void *Result = BumpPtr;
  BumpPtr += RoundedSize;
  return Result;
}

