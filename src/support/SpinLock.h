//===- support/SpinLock.h - Tiny test-and-set spinlock ---------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-byte test-and-set spinlock for the parallel propagation path.
/// Critical sections in the runtime are a handful of pointer updates
/// (use-list splices, memo-chain links), far shorter than a futex round
/// trip, so spinning wins; the lock object must also be cheap enough to
/// declare in arrays of hundreds (address-hashed stripes over modrefs
/// and memo buckets).
///
/// `MaybeLockGuard` is the armed-conditional form: when the runtime is
/// propagating sequentially (the common case) the guard compiles down to
/// a null check, so striping costs nothing until a parallel phase arms
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_SPINLOCK_H
#define CEAL_SUPPORT_SPINLOCK_H

#include <atomic>

namespace ceal {

/// Pause/yield inside a spin loop: keeps the speculating core from
/// flooding the pipeline and gives a hyperthread sibling the slot.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
public:
  void lock() {
    // Test-and-test-and-set: spin on the cheap load, attempt the RMW
    // only when the lock looks free.
    for (;;) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      while (Flag.load(std::memory_order_relaxed))
        cpuRelax();
    }
  }

  bool tryLock() { return !Flag.exchange(true, std::memory_order_acquire); }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

/// RAII guard over a SpinLock.
class SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) : L(&L) { L.lock(); }
  ~SpinLockGuard() { L->unlock(); }
  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

private:
  SpinLock *L;
};

/// Conditional RAII guard: locks only when \p Armed is true. The null
/// branch is the sequential fast path.
class MaybeLockGuard {
public:
  MaybeLockGuard(bool Armed, SpinLock &Lock) : L(Armed ? &Lock : nullptr) {
    if (L)
      L->lock();
  }
  ~MaybeLockGuard() {
    if (L)
      L->unlock();
  }
  MaybeLockGuard(const MaybeLockGuard &) = delete;
  MaybeLockGuard &operator=(const MaybeLockGuard &) = delete;

private:
  SpinLock *L;
};

} // namespace ceal

#endif // CEAL_SUPPORT_SPINLOCK_H
