//===- support/simd/Simd.h - SIMD kernels + CPU-feature dispatch -*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vector-kernel library behind the runtime's linear sweeps: batched
/// memo hashing, streaming checksum blocks, handle bounds sweeps, bucket
/// index computation, and OM label rewrites. Modeled on the per-space
/// kernel tables of vector-similarity libraries: one scalar reference
/// implementation defines the semantics, and SSE4.2/AVX2/AVX-512
/// variants — compiled only when cmake/cpu_features.cmake finds the
/// toolchain support — must produce bit-identical results (enforced by
/// tests/SimdKernelsTest and the bench differential check).
///
/// Dispatch happens once per process, on first use: a CPUID probe picks
/// the widest variant the executing CPU supports, clamped by the
/// CEAL_SIMD environment override (scalar|sse42|avx2|avx512|auto), which
/// is the kill switch — CEAL_SIMD=scalar forces the reference path
/// everywhere. Because every variant computes the same function, the
/// selection can never change results, only speed; snapshots, memo
/// bucketing, and trace digests are identical across variants.
///
/// The entry points below (checksumBlocks, hashBatch, ...) also maintain
/// per-kernel call/byte counters that the propagation profiler emits
/// (see runtime/Profile.h), so bench output can attribute wins.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_SIMD_SIMD_H
#define CEAL_SUPPORT_SIMD_SIMD_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>

namespace ceal::simd {

//===----------------------------------------------------------------------===//
// Kernel contracts
//===----------------------------------------------------------------------===//

/// Independent 64-bit mix streams per vector pass. Chosen so the AVX-512
/// path runs four 8-lane accumulators: the serial dependence inside one
/// stream is a ~15-cycle multiply chain, and 32 interleaved streams keep
/// the multiplier busy on every implementation down to plain scalar ILP.
inline constexpr size_t HashLanes = 32;
/// Checksum64 consumes input in blocks of one 8-byte word per lane.
inline constexpr size_t ChecksumBlockBytes = HashLanes * 8;

/// The xorshift-multiply word mixer shared by the memo indexes
/// (runtime/MemoTable.h hashMixWord) and Checksum64. Every kernel
/// variant must implement exactly this step.
inline uint64_t mixStep(uint64_t H, uint64_t W) {
  H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

/// One kernel variant: a table of function pointers with identical
/// semantics. The scalar table is the reference; the others exist only
/// to be faster.
struct Ops {
  /// Folds \p NBlocks consecutive 256-byte blocks into the 32 lane
  /// accumulators: for each block b and lane l,
  ///   Lanes[l] = mixStep(Lanes[l], LE64(Data + b*256 + l*8)).
  /// \p Data may be unaligned.
  void (*ChecksumBlocks)(uint64_t *Lanes, const unsigned char *Data,
                         size_t NBlocks);

  /// 32 independent hash streams over a lane-major word matrix:
  ///   H[l] = mixStep(H[l], W[w*32 + l]) for w = 0 .. NWords-1.
  /// Callers seed H and read the final states back out.
  void (*HashBatch)(uint64_t *H, const uint64_t *W, size_t NWords);

  /// First index I with A[I] >= Limit (unsigned), or \p N when none.
  /// \p A may be unaligned (4-byte alignment only).
  size_t (*BoundsCheckU32)(const uint32_t *A, size_t N, uint32_t Limit);

  /// Out[i] = load32((const char *)Nodes[i] + HashOff) & Mask for
  /// i = 0 .. N-1: the memo bucket index of each node under a
  /// power-of-two bucket count. Every Nodes[i] must be readable at
  /// [HashOff, HashOff+4).
  void (*BucketIndex)(const void *const *Nodes, size_t N, size_t HashOff,
                      uint32_t Mask, uint32_t *Out);

  /// Linked-chain label rewrite (OM group relabel): starting at node 0 =
  /// \p First with node i+1 = load_ptr(node_i + NextOff), store
  ///   Base + Gap * (i + 1)  at  node_i + LabelOff
  /// for i = 0 .. Count-1. The Next field of every one of the Count
  /// nodes may be read (matching the plain pointer walk it replaces).
  ///
  /// [SafeLo, SafeHi) is an optional speculation window: addresses
  /// inside it are guaranteed readable even if they are not nodes of
  /// this chain (the owning arena region). Vector variants use it to
  /// verify constant-stride runs with independent loads — candidate
  /// addresses are derived, range-checked against the window, loaded in
  /// parallel, and only *verified* nodes are written. Pass null/null to
  /// forbid speculation (e.g. while other threads own parts of the
  /// region); all variants then degrade to the serial chase.
  void (*OmRelabel)(void *First, uint64_t Count, uint64_t Base, uint64_t Gap,
                    size_t NextOff, size_t LabelOff, const void *SafeLo,
                    const void *SafeHi);
};

//===----------------------------------------------------------------------===//
// Variants and dispatch
//===----------------------------------------------------------------------===//

enum class Variant : uint8_t { Scalar = 0, Sse42 = 1, Avx2 = 2, Avx512 = 3 };
inline constexpr unsigned NumVariants = 4;

const char *variantName(Variant V);

/// Whether this binary contains code for \p V (compile-time gate).
bool variantCompiled(Variant V);
/// Whether the executing CPU can run \p V (CPUID probe; Scalar: always).
bool cpuSupports(Variant V);
/// The widest variant that is both compiled and CPU-supported.
Variant maxSupported();

/// The dispatcher-selected variant: min(maxSupported, CEAL_SIMD
/// override). Resolved once, on first call, and stable thereafter.
Variant selected();
/// The op table of the selected variant.
const Ops &ops();

/// The op table for a specific variant, or null when it is not compiled
/// in or the CPU cannot run it. Lets tests and the bench differential
/// check run every variant in one process regardless of CEAL_SIMD.
const Ops *variantOps(Variant V);

//===----------------------------------------------------------------------===//
// Per-kernel dispatch accounting
//===----------------------------------------------------------------------===//

enum class Kernel : uint8_t {
  ChecksumBlocks = 0,
  HashBatch = 1,
  BoundsCheckU32 = 2,
  BucketIndex = 3,
  OmRelabel = 4,
};
inline constexpr unsigned NumKernels = 5;

const char *kernelName(Kernel K);

/// Process-global counters, one row per kernel: calls through the
/// counted entry points below and input bytes processed. Relaxed
/// atomics — the hot paths that call these kernels are either
/// single-threaded phases or already per-batch, so one add per *batch*
/// is noise.
struct KernelCounters {
  std::atomic<uint64_t> Calls{0};
  std::atomic<uint64_t> Bytes{0};
};
KernelCounters &counters(Kernel K);

/// Emits {"selected": ..., "max_supported": ..., "kernels": [{"kernel",
/// "variant", "calls", "bytes"}, ...]} for the profiler/bench JSON.
void writeCountersJson(std::ostream &OS);

inline void note(Kernel K, uint64_t Bytes) {
  KernelCounters &C = counters(K);
  C.Calls.fetch_add(1, std::memory_order_relaxed);
  C.Bytes.fetch_add(Bytes, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Counted entry points (what production code calls)
//===----------------------------------------------------------------------===//

inline void checksumBlocks(uint64_t *Lanes, const unsigned char *Data,
                           size_t NBlocks) {
  note(Kernel::ChecksumBlocks, uint64_t(NBlocks) * ChecksumBlockBytes);
  ops().ChecksumBlocks(Lanes, Data, NBlocks);
}

inline void hashBatch(uint64_t *H, const uint64_t *W, size_t NWords) {
  note(Kernel::HashBatch, uint64_t(NWords) * HashLanes * 8);
  ops().HashBatch(H, W, NWords);
}

inline size_t boundsCheckU32(const uint32_t *A, size_t N, uint32_t Limit) {
  note(Kernel::BoundsCheckU32, uint64_t(N) * 4);
  return ops().BoundsCheckU32(A, N, Limit);
}

inline void bucketIndex(const void *const *Nodes, size_t N, size_t HashOff,
                        uint32_t Mask, uint32_t *Out) {
  note(Kernel::BucketIndex, uint64_t(N) * (sizeof(void *) + 4));
  ops().BucketIndex(Nodes, N, HashOff, Mask, Out);
}

inline void omRelabel(void *First, uint64_t Count, uint64_t Base, uint64_t Gap,
                      size_t NextOff, size_t LabelOff, const void *SafeLo,
                      const void *SafeHi) {
  note(Kernel::OmRelabel, Count * (sizeof(void *) + 8));
  ops().OmRelabel(First, Count, Base, Gap, NextOff, LabelOff, SafeLo, SafeHi);
}

//===----------------------------------------------------------------------===//
// Variant tables (internal linkage points for SimdDispatch.cpp)
//===----------------------------------------------------------------------===//

const Ops &scalarOps();
#ifdef CEAL_SIMD_HAVE_SSE42
const Ops &sse42Ops();
#endif
#ifdef CEAL_SIMD_HAVE_AVX2
const Ops &avx2Ops();
#endif
#ifdef CEAL_SIMD_HAVE_AVX512
const Ops &avx512Ops();
#endif

} // namespace ceal::simd

#endif // CEAL_SUPPORT_SIMD_SIMD_H
