//===- support/simd/KernelsShared.h - Scalar kernel bodies -----*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar kernel bodies: KernelsScalar.cpp wraps them into the
/// reference op table, and the ISA variant TUs call them for tails and
/// speculation-failure fallbacks so every partial path is the reference
/// path by construction.
///
/// Everything here lives in an anonymous namespace ON PURPOSE: the
/// variant TUs are compiled with different ISA flags, and an `inline`
/// function included into several of them would be merged by the linker
/// into ONE copy — compiled with whichever TU's flags the linker
/// happened to keep. A scalar-table call could then execute, say,
/// auto-vectorized SSE4.2 code on a CPU without it. Internal linkage
/// gives every TU its own copy built with its own flags, so the scalar
/// table's code is always baseline code.
///
/// Foreign-offset memory (trace nodes, OM nodes seen only as
/// base+offset) is accessed through memcpy: the kernels know layouts by
/// offset, not by type, and memcpy keeps that strict-aliasing-clean.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_SIMD_KERNELSSHARED_H
#define CEAL_SUPPORT_SIMD_KERNELSSHARED_H

#include "support/simd/Simd.h"

#include <cstring>

namespace ceal::simd {
namespace {

inline uint64_t loadLE64(const unsigned char *P) {
  // Little-endian by definition of the checksum block format. On LE
  // hosts (every x86 variant) this is a plain 8-byte load; the byte
  // assembly form keeps scalar-only big-endian builds self-consistent
  // with their own snapshots.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  uint64_t W;
  std::memcpy(&W, P, 8);
  return W;
#else
  uint64_t W = 0;
  for (unsigned I = 0; I < 8; ++I)
    W |= uint64_t(P[I]) << (8 * I);
  return W;
#endif
}

inline void checksumBlocksScalar(uint64_t *Lanes, const unsigned char *Data,
                                 size_t NBlocks) {
  for (size_t B = 0; B < NBlocks; ++B, Data += ChecksumBlockBytes)
    for (size_t L = 0; L < HashLanes; ++L)
      Lanes[L] = mixStep(Lanes[L], loadLE64(Data + L * 8));
}

inline void hashBatchScalar(uint64_t *H, const uint64_t *W, size_t NWords) {
  for (size_t I = 0; I < NWords; ++I, W += HashLanes)
    for (size_t L = 0; L < HashLanes; ++L)
      H[L] = mixStep(H[L], W[L]);
}

inline size_t boundsCheckU32Scalar(const uint32_t *A, size_t N,
                                   uint32_t Limit) {
  for (size_t I = 0; I < N; ++I)
    if (A[I] >= Limit)
      return I;
  return N;
}

inline void bucketIndexScalar(const void *const *Nodes, size_t N,
                              size_t HashOff, uint32_t Mask, uint32_t *Out) {
  for (size_t I = 0; I < N; ++I) {
    uint32_t H;
    std::memcpy(&H, static_cast<const char *>(Nodes[I]) + HashOff, 4);
    Out[I] = H & Mask;
  }
}

/// The serial pointer chase: relabels \p Count nodes starting at
/// \p First with labels Base + Gap*(StartIndex+1 ...), returning the
/// node after the last one written. StartIndex lets batched variants
/// resume mid-chain after a speculation failure.
inline void *omRelabelChase(void *First, uint64_t StartIndex, uint64_t Count,
                            uint64_t Base, uint64_t Gap, size_t NextOff,
                            size_t LabelOff) {
  char *N = static_cast<char *>(First);
  uint64_t Label = Base + Gap * StartIndex;
  for (uint64_t I = 0; I < Count; ++I) {
    Label += Gap;
    std::memcpy(N + LabelOff, &Label, 8);
    std::memcpy(&N, N + NextOff, sizeof(char *));
  }
  return N;
}

inline void omRelabelScalar(void *First, uint64_t Count, uint64_t Base,
                            uint64_t Gap, size_t NextOff, size_t LabelOff,
                            const void *, const void *) {
  if (Count)
    omRelabelChase(First, 0, Count, Base, Gap, NextOff, LabelOff);
}

/// The batched rewrite every ISA table uses: the serial chase is
/// latency-bound on the Next load (each iteration's address depends on
/// the previous load), so each batch of 8 speculates that the chain is
/// a constant-stride run, derives the 8 candidate addresses, range-
/// checks them against the [SafeLo, SafeHi) window, issues the 8 Next
/// loads *independently*, and commits label stores only to verified
/// nodes. A verified batch whose last Next continues the stride carries
/// it into the next batch, eliminating the dependent load entirely
/// while a run lasts. The win is memory-level parallelism, which is why
/// this one body serves SSE4.2 through AVX-512 — hardware gathers
/// measured no better than eight independent scalar loads here.
inline void omRelabelSpec(void *First, uint64_t Count, uint64_t Base,
                          uint64_t Gap, size_t NextOff, size_t LabelOff,
                          const void *SafeLo, const void *SafeHi) {
  constexpr uint64_t Batch = 8;
  if (Count == 0)
    return;
  const uintptr_t Lo = reinterpret_cast<uintptr_t>(SafeLo);
  const uintptr_t Hi = reinterpret_cast<uintptr_t>(SafeHi);
  const uintptr_t Span = (NextOff > LabelOff ? NextOff : LabelOff) + 8;
  if (!SafeLo || !SafeHi || Hi < Lo || Hi - Lo < Span || Count < Batch) {
    omRelabelChase(First, 0, Count, Base, Gap, NextOff, LabelOff);
    return;
  }
  const uintptr_t HiSpan = Hi - Span;
  char *N = static_cast<char *>(First);
  uint64_t I = 0;
  uint64_t Lab = Base; // == Base + Gap*I throughout
  uintptr_t S = 0;     // stride carried from a verified batch; 0 = unknown
  while (I + Batch <= Count) {
    const uintptr_t P0 = reinterpret_cast<uintptr_t>(N);
    const bool Carried = S != 0;
    if (!Carried) {
      char *P1;
      std::memcpy(&P1, N + NextOff, sizeof(char *));
      S = reinterpret_cast<uintptr_t>(P1) - P0;
    }
    // Monotone window check covers every candidate P0 + j*S without
    // per-candidate tests (no wraparound inside [Lo, HiSpan]).
    const uintptr_t Last = P0 + S * (Batch - 1);
    const bool Fwd = intptr_t(S) > 0;
    if (S != 0 && (Fwd ? (Last > P0 && P0 >= Lo && Last <= HiSpan)
                       : (Last < P0 && Last >= Lo && P0 <= HiSpan))) {
      uintptr_t Nx[Batch];
      for (uint64_t J = 0; J < Batch; ++J)
        std::memcpy(&Nx[J], reinterpret_cast<char *>(P0 + S * J) + NextOff,
                    sizeof(char *));
      bool Run = true;
      for (uint64_t J = 0; J + 1 < Batch; ++J)
        Run &= Nx[J] == P0 + S * (J + 1);
      if (Run) {
        uint64_t L = Lab;
        for (uint64_t J = 0; J < Batch; ++J) {
          L += Gap;
          std::memcpy(reinterpret_cast<char *>(P0 + S * J) + LabelOff, &L, 8);
        }
        N = reinterpret_cast<char *>(Nx[Batch - 1]);
        I += Batch;
        Lab = L;
        if (Nx[Batch - 1] - P0 != S * Batch)
          S = 0; // run ended exactly at the batch boundary
        continue;
      }
    }
    if (Carried) {
      // The carried stride mispredicted; retry this batch from the
      // chain's actual Next before surrendering to the serial chase.
      S = 0;
      continue;
    }
    N = static_cast<char *>(
        omRelabelChase(N, I, Batch, Base, Gap, NextOff, LabelOff));
    I += Batch;
    Lab += Gap * Batch;
    S = 0;
  }
  if (I < Count)
    omRelabelChase(N, I, Count - I, Base, Gap, NextOff, LabelOff);
}

} // namespace
} // namespace ceal::simd

#endif // CEAL_SUPPORT_SIMD_KERNELSSHARED_H
