//===- support/simd/KernelsAvx2.cpp - AVX2 kernel variant -----------------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Four 64-bit mix lanes per register, eight accumulators for the
// 32-lane sweeps, 64-bit gathers for the pointer-indexed kernels. The
// 64-bit multiply is still emulated (three vpmuludq), which is why the
// checksum format interleaves enough lanes to hide its latency. This TU
// is compiled with -mavx2 and only entered after a CPUID check.
//
//===----------------------------------------------------------------------===//

#include "support/simd/KernelsShared.h"

#include <immintrin.h>

namespace ceal::simd {
namespace {

constexpr uint64_t Golden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t Mult = 0xff51afd7ed558ccdULL;

inline __m256i mulM(__m256i A) {
  const __m256i MLo = _mm256_set1_epi64x(int64_t(Mult & 0xffffffffu));
  const __m256i MHi = _mm256_set1_epi64x(int64_t(Mult >> 32));
  __m256i AHi = _mm256_srli_epi64(A, 32);
  __m256i LoLo = _mm256_mul_epu32(A, MLo);
  __m256i HiLo = _mm256_mul_epu32(AHi, MLo);
  __m256i LoHi = _mm256_mul_epu32(A, MHi);
  __m256i Cross = _mm256_add_epi64(HiLo, LoHi);
  return _mm256_add_epi64(LoLo, _mm256_slli_epi64(Cross, 32));
}

inline __m256i mixV(__m256i H, __m256i W) {
  const __m256i Gold = _mm256_set1_epi64x(int64_t(Golden));
  __m256i T = _mm256_add_epi64(W, Gold);
  T = _mm256_add_epi64(T, _mm256_slli_epi64(H, 6));
  T = _mm256_add_epi64(T, _mm256_srli_epi64(H, 2));
  H = _mm256_xor_si256(H, T);
  H = mulM(H);
  return _mm256_xor_si256(H, _mm256_srli_epi64(H, 33));
}

inline __m256i load256(const void *P) {
  return _mm256_loadu_si256(static_cast<const __m256i *>(P));
}

// 32 lanes = eight accumulators, all register-resident through a single
// pass over the data.
void mixSweep(uint64_t *Lanes, const unsigned char *Data, size_t NSteps) {
  __m256i H0 = load256(Lanes + 0), H1 = load256(Lanes + 4);
  __m256i H2 = load256(Lanes + 8), H3 = load256(Lanes + 12);
  __m256i H4 = load256(Lanes + 16), H5 = load256(Lanes + 20);
  __m256i H6 = load256(Lanes + 24), H7 = load256(Lanes + 28);
  for (size_t B = 0; B < NSteps; ++B, Data += ChecksumBlockBytes) {
    H0 = mixV(H0, load256(Data + 0));
    H1 = mixV(H1, load256(Data + 32));
    H2 = mixV(H2, load256(Data + 64));
    H3 = mixV(H3, load256(Data + 96));
    H4 = mixV(H4, load256(Data + 128));
    H5 = mixV(H5, load256(Data + 160));
    H6 = mixV(H6, load256(Data + 192));
    H7 = mixV(H7, load256(Data + 224));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 0), H0);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 4), H1);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 8), H2);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 12), H3);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 16), H4);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 20), H5);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 24), H6);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes + 28), H7);
}

void checksumBlocksAvx2(uint64_t *Lanes, const unsigned char *Data,
                        size_t NBlocks) {
  mixSweep(Lanes, Data, NBlocks);
}

void hashBatchAvx2(uint64_t *H, const uint64_t *W, size_t NWords) {
  mixSweep(H, reinterpret_cast<const unsigned char *>(W), NWords);
}

size_t boundsCheckU32Avx2(const uint32_t *A, size_t N, uint32_t Limit) {
  const __m256i L = _mm256_set1_epi32(int(Limit));
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i V = load256(A + I);
    __m256i Ge = _mm256_cmpeq_epi32(_mm256_max_epu32(V, L), V);
    int Mask = _mm256_movemask_ps(_mm256_castsi256_ps(Ge));
    if (Mask)
      return I + size_t(__builtin_ctz(unsigned(Mask)));
  }
  return I + boundsCheckU32Scalar(A + I, N - I, Limit);
}

void bucketIndexAvx2(const void *const *Nodes, size_t N, size_t HashOff,
                     uint32_t Mask, uint32_t *Out) {
  static_assert(sizeof(void *) == 8, "pointer gathers assume 64-bit hosts");
  const __m256i Off = _mm256_set1_epi64x(int64_t(HashOff));
  const __m128i M = _mm_set1_epi32(int(Mask));
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Addr = _mm256_add_epi64(load256(Nodes + I), Off);
    __m128i H = _mm256_i64gather_epi32(static_cast<const int *>(nullptr), Addr,
                                       /*scale=*/1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I),
                     _mm_and_si128(H, M));
  }
  bucketIndexScalar(Nodes + I, N - I, HashOff, Mask, Out + I);
}

} // namespace

const Ops &avx2Ops() {
  static const Ops Table = {
      &checksumBlocksAvx2, &hashBatchAvx2, &boundsCheckU32Avx2,
      &bucketIndexAvx2,    &omRelabelSpec,
  };
  return Table;
}

} // namespace ceal::simd
