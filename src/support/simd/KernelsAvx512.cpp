//===- support/simd/KernelsAvx512.cpp - AVX-512 kernel variant ------------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Eight 64-bit mix lanes per register and a native 64-bit multiply
// (vpmullq, AVX-512DQ). vpmullq is a long-latency instruction, which is
// exactly why the checksum/hash formats carry 32 interleaved lanes:
// four accumulators keep the multiplier pipeline full. Compiled with
// -mavx512{f,dq,bw,vl}; entered only after a CPUID check for all four.
//
//===----------------------------------------------------------------------===//

#include "support/simd/KernelsShared.h"

#include <immintrin.h>

namespace ceal::simd {
namespace {

constexpr uint64_t Golden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t Mult = 0xff51afd7ed558ccdULL;

inline __m512i mixV(__m512i H, __m512i W) {
  const __m512i Gold = _mm512_set1_epi64(int64_t(Golden));
  const __m512i M = _mm512_set1_epi64(int64_t(Mult));
  __m512i T = _mm512_add_epi64(W, Gold);
  T = _mm512_add_epi64(T, _mm512_slli_epi64(H, 6));
  T = _mm512_add_epi64(T, _mm512_srli_epi64(H, 2));
  H = _mm512_xor_si512(H, T);
  H = _mm512_mullo_epi64(H, M);
  return _mm512_xor_si512(H, _mm512_srli_epi64(H, 33));
}

void mixSweep(uint64_t *Lanes, const unsigned char *Data, size_t NSteps) {
  __m512i H0 = _mm512_loadu_si512(Lanes + 0);
  __m512i H1 = _mm512_loadu_si512(Lanes + 8);
  __m512i H2 = _mm512_loadu_si512(Lanes + 16);
  __m512i H3 = _mm512_loadu_si512(Lanes + 24);
  for (size_t B = 0; B < NSteps; ++B, Data += ChecksumBlockBytes) {
    H0 = mixV(H0, _mm512_loadu_si512(Data + 0));
    H1 = mixV(H1, _mm512_loadu_si512(Data + 64));
    H2 = mixV(H2, _mm512_loadu_si512(Data + 128));
    H3 = mixV(H3, _mm512_loadu_si512(Data + 192));
  }
  _mm512_storeu_si512(Lanes + 0, H0);
  _mm512_storeu_si512(Lanes + 8, H1);
  _mm512_storeu_si512(Lanes + 16, H2);
  _mm512_storeu_si512(Lanes + 24, H3);
}

void checksumBlocksAvx512(uint64_t *Lanes, const unsigned char *Data,
                          size_t NBlocks) {
  mixSweep(Lanes, Data, NBlocks);
}

void hashBatchAvx512(uint64_t *H, const uint64_t *W, size_t NWords) {
  mixSweep(H, reinterpret_cast<const unsigned char *>(W), NWords);
}

size_t boundsCheckU32Avx512(const uint32_t *A, size_t N, uint32_t Limit) {
  const __m512i L = _mm512_set1_epi32(int(Limit));
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m512i V = _mm512_loadu_si512(A + I);
    __mmask16 Ge = _mm512_cmpge_epu32_mask(V, L);
    if (Ge)
      return I + size_t(__builtin_ctz(unsigned(Ge)));
  }
  if (I < N) {
    // Masked tail: one more 16-wide compare over the valid remainder.
    __mmask16 Valid = __mmask16((1u << (N - I)) - 1);
    __m512i V = _mm512_maskz_loadu_epi32(Valid, A + I);
    __mmask16 Ge = _mm512_mask_cmpge_epu32_mask(Valid, V, L);
    if (Ge)
      return I + size_t(__builtin_ctz(unsigned(Ge)));
  }
  return N;
}

void bucketIndexAvx512(const void *const *Nodes, size_t N, size_t HashOff,
                       uint32_t Mask, uint32_t *Out) {
  static_assert(sizeof(void *) == 8, "pointer gathers assume 64-bit hosts");
  // 4-wide 256-bit gathers, same shape as the AVX2 variant: measured
  // faster than one 8-wide vpgatherqd here (the 512-bit gather's extra
  // element latency is not bought back by fewer instructions).
  const __m256i Off = _mm256_set1_epi64x(int64_t(HashOff));
  const __m128i M = _mm_set1_epi32(int(Mask));
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Addr = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Nodes + I)), Off);
    __m128i H = _mm256_i64gather_epi32(static_cast<const int *>(nullptr), Addr,
                                       /*scale=*/1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I),
                     _mm_and_si128(H, M));
  }
  bucketIndexScalar(Nodes + I, N - I, HashOff, Mask, Out + I);
}

} // namespace

const Ops &avx512Ops() {
  static const Ops Table = {
      &checksumBlocksAvx512, &hashBatchAvx512, &boundsCheckU32Avx512,
      &bucketIndexAvx512,    &omRelabelSpec,
  };
  return Table;
}

} // namespace ceal::simd
