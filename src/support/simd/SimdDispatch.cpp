//===- support/simd/SimdDispatch.cpp - CPUID probe + variant select -------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// One-time, process-wide selection of the kernel variant: the widest
// ISA the executing CPU supports among the variants this binary was
// built with, clamped by the CEAL_SIMD environment override. The
// resolved table never changes afterwards, so callers may cache ops()
// freely and per-kernel counters can attribute every call to one
// variant.
//
//===----------------------------------------------------------------------===//

#include "support/simd/Simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ceal::simd {

const char *variantName(Variant V) {
  switch (V) {
  case Variant::Scalar:
    return "scalar";
  case Variant::Sse42:
    return "sse42";
  case Variant::Avx2:
    return "avx2";
  case Variant::Avx512:
    return "avx512";
  }
  return "?";
}

const char *kernelName(Kernel K) {
  switch (K) {
  case Kernel::ChecksumBlocks:
    return "checksum_blocks";
  case Kernel::HashBatch:
    return "hash_batch";
  case Kernel::BoundsCheckU32:
    return "bounds_check_u32";
  case Kernel::BucketIndex:
    return "bucket_index";
  case Kernel::OmRelabel:
    return "om_relabel";
  }
  return "?";
}

bool variantCompiled(Variant V) {
  switch (V) {
  case Variant::Scalar:
    return true;
  case Variant::Sse42:
#ifdef CEAL_SIMD_HAVE_SSE42
    return true;
#else
    return false;
#endif
  case Variant::Avx2:
#ifdef CEAL_SIMD_HAVE_AVX2
    return true;
#else
    return false;
#endif
  case Variant::Avx512:
#ifdef CEAL_SIMD_HAVE_AVX512
    return true;
#else
    return false;
#endif
  }
  return false;
}

bool cpuSupports(Variant V) {
#if defined(__x86_64__) || defined(__i386__)
  switch (V) {
  case Variant::Scalar:
    return true;
  case Variant::Sse42:
    return __builtin_cpu_supports("sse4.2");
  case Variant::Avx2:
    return __builtin_cpu_supports("avx2");
  case Variant::Avx512:
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return V == Variant::Scalar;
#endif
}

Variant maxSupported() {
  for (int V = int(NumVariants) - 1; V > 0; --V)
    if (variantCompiled(Variant(V)) && cpuSupports(Variant(V)))
      return Variant(V);
  return Variant::Scalar;
}

const Ops *variantOps(Variant V) {
  if (!variantCompiled(V) || !cpuSupports(V))
    return nullptr;
  switch (V) {
  case Variant::Scalar:
    return &scalarOps();
#ifdef CEAL_SIMD_HAVE_SSE42
  case Variant::Sse42:
    return &sse42Ops();
#endif
#ifdef CEAL_SIMD_HAVE_AVX2
  case Variant::Avx2:
    return &avx2Ops();
#endif
#ifdef CEAL_SIMD_HAVE_AVX512
  case Variant::Avx512:
    return &avx512Ops();
#endif
  default:
    return nullptr;
  }
}

namespace {

/// Parses CEAL_SIMD. Unknown strings warn once and mean "auto"; a
/// request above what the binary/CPU supports clamps down silently (the
/// variable is a ceiling, so forcing "avx512" on an AVX2 host runs the
/// AVX2 path — the forced-variant CI matrix relies on this).
Variant resolveSelection() {
  Variant Best = maxSupported();
  const char *Env = std::getenv("CEAL_SIMD");
  if (!Env || !*Env || std::strcmp(Env, "auto") == 0)
    return Best;
  Variant Want = Best;
  if (std::strcmp(Env, "scalar") == 0)
    Want = Variant::Scalar;
  else if (std::strcmp(Env, "sse42") == 0)
    Want = Variant::Sse42;
  else if (std::strcmp(Env, "avx2") == 0)
    Want = Variant::Avx2;
  else if (std::strcmp(Env, "avx512") == 0)
    Want = Variant::Avx512;
  else {
    std::fprintf(stderr,
                 "ceal: ignoring unknown CEAL_SIMD value '%s' "
                 "(want scalar|sse42|avx2|avx512|auto)\n",
                 Env);
    return Best;
  }
  if (int(Want) > int(Best))
    Want = Best;
  // The override may also name a variant below Best that was never
  // compiled (e.g. CEAL_SIMD=sse42 in a scalar-only build); fall back
  // to the widest one at or below the request.
  while (int(Want) > 0 && variantOps(Want) == nullptr)
    Want = Variant(int(Want) - 1);
  return Want;
}

struct Resolved {
  Variant V;
  const Ops *O;
  Resolved() : V(resolveSelection()), O(variantOps(V)) {
    if (!O)
      O = &scalarOps();
  }
};

const Resolved &resolved() {
  // Thread-safe one-time init; everything afterwards is a const read.
  static const Resolved R;
  return R;
}

} // namespace

Variant selected() { return resolved().V; }
const Ops &ops() { return *resolved().O; }

KernelCounters &counters(Kernel K) {
  static KernelCounters Rows[NumKernels];
  return Rows[unsigned(K)];
}

void writeCountersJson(std::ostream &OS) {
  OS << "{\"selected\": \"" << variantName(selected())
     << "\", \"max_supported\": \"" << variantName(maxSupported())
     << "\", \"kernels\": [";
  for (unsigned K = 0; K < NumKernels; ++K) {
    const KernelCounters &C = counters(Kernel(K));
    OS << (K ? ", " : "") << "{\"kernel\": \"" << kernelName(Kernel(K))
       << "\", \"variant\": \"" << variantName(selected())
       << "\", \"calls\": " << C.Calls.load(std::memory_order_relaxed)
       << ", \"bytes\": " << C.Bytes.load(std::memory_order_relaxed) << "}";
  }
  OS << "]}";
}

} // namespace ceal::simd
