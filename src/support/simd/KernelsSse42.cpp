//===- support/simd/KernelsSse42.cpp - SSE4.2 kernel variant --------------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Two 64-bit mix lanes per register. SSE has no 64-bit multiply, so the
// mixer's multiply is decomposed into three 32x32->64 vpmuludq products
// (lo*lo + ((hi*lo + lo*hi) << 32)); with the multiplier constant, its
// halves are precomputed. This TU is compiled with -msse4.2 and only
// ever entered through the dispatch table after a CPUID check.
//
//===----------------------------------------------------------------------===//

#include "support/simd/KernelsShared.h"

#include <immintrin.h>

namespace ceal::simd {
namespace {

constexpr uint64_t Golden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t Mult = 0xff51afd7ed558ccdULL;

// A * Mult per 64-bit lane (low 64 bits), Mult split into 32-bit halves.
inline __m128i mulM(__m128i A) {
  const __m128i MLo = _mm_set1_epi64x(int64_t(Mult & 0xffffffffu));
  const __m128i MHi = _mm_set1_epi64x(int64_t(Mult >> 32));
  __m128i AHi = _mm_srli_epi64(A, 32);
  __m128i LoLo = _mm_mul_epu32(A, MLo);
  __m128i HiLo = _mm_mul_epu32(AHi, MLo);
  __m128i LoHi = _mm_mul_epu32(A, MHi);
  __m128i Cross = _mm_add_epi64(HiLo, LoHi);
  return _mm_add_epi64(LoLo, _mm_slli_epi64(Cross, 32));
}

inline __m128i mixV(__m128i H, __m128i W) {
  const __m128i Gold = _mm_set1_epi64x(int64_t(Golden));
  __m128i T = _mm_add_epi64(W, Gold);
  T = _mm_add_epi64(T, _mm_slli_epi64(H, 6));
  T = _mm_add_epi64(T, _mm_srli_epi64(H, 2));
  H = _mm_xor_si128(H, T);
  H = mulM(H);
  return _mm_xor_si128(H, _mm_srli_epi64(H, 33));
}

// Shared core for ChecksumBlocks and HashBatch: both walk a sequence of
// 256-byte steps mixing word l of each step into lane l. Lanes are
// processed in groups of 8 (four registers) so the accumulators stay
// register-resident across the whole sweep; each group's pass reads a
// 64-byte slice of every step.
void mixSweep(uint64_t *Lanes, const unsigned char *Data, size_t NSteps) {
  for (size_t G = 0; G < HashLanes; G += 8) {
    uint64_t *L = Lanes + G;
    __m128i H0 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(L + 0));
    __m128i H1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(L + 2));
    __m128i H2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(L + 4));
    __m128i H3 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(L + 6));
    const unsigned char *P = Data + G * 8;
    for (size_t B = 0; B < NSteps; ++B, P += ChecksumBlockBytes) {
      H0 = mixV(H0, _mm_loadu_si128(reinterpret_cast<const __m128i *>(P)));
      H1 = mixV(H1,
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(P + 16)));
      H2 = mixV(H2,
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(P + 32)));
      H3 = mixV(H3,
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(P + 48)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(L + 0), H0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(L + 2), H1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(L + 4), H2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(L + 6), H3);
  }
}

void checksumBlocksSse42(uint64_t *Lanes, const unsigned char *Data,
                         size_t NBlocks) {
  mixSweep(Lanes, Data, NBlocks);
}

void hashBatchSse42(uint64_t *H, const uint64_t *W, size_t NWords) {
  mixSweep(H, reinterpret_cast<const unsigned char *>(W), NWords);
}

size_t boundsCheckU32Sse42(const uint32_t *A, size_t N, uint32_t Limit) {
  const __m128i L = _mm_set1_epi32(int(Limit));
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m128i V = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    // max(V, L) == V  <=>  V >= L  (unsigned).
    __m128i Ge = _mm_cmpeq_epi32(_mm_max_epu32(V, L), V);
    int Mask = _mm_movemask_ps(_mm_castsi128_ps(Ge));
    if (Mask)
      return I + size_t(__builtin_ctz(unsigned(Mask)));
  }
  return I + boundsCheckU32Scalar(A + I, N - I, Limit);
}

} // namespace

const Ops &sse42Ops() {
  static const Ops Table = {
      &checksumBlocksSse42, &hashBatchSse42, &boundsCheckU32Sse42,
      &bucketIndexScalar,   &omRelabelSpec,
  };
  return Table;
}

} // namespace ceal::simd
