//===- support/simd/KernelsScalar.cpp - Reference kernel table ------------===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The reference variant: defines the semantics every ISA variant must
// reproduce bit-for-bit. Compiled with the project's baseline flags
// only (no ISA options), so it is also what non-x86 hosts run. Note the
// scalar kernels are not strawmen — the 32-lane layouts were chosen so
// even plain scalar code runs independent multiply chains, which is
// already measurably faster than the serial-chain code they replaced.
//
//===----------------------------------------------------------------------===//

#include "support/simd/KernelsShared.h"

namespace ceal::simd {

const Ops &scalarOps() {
  static const Ops Table = {
      &checksumBlocksScalar, &hashBatchScalar, &boundsCheckU32Scalar,
      &bucketIndexScalar,    &omRelabelScalar,
  };
  return Table;
}

} // namespace ceal::simd
