//===- support/Random.h - Deterministic PRNGs ------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random generators used by workload builders and by
/// the randomized tree-contraction algorithm. Benchmarks must be
/// reproducible across runs, so no std::random_device anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_RANDOM_H
#define CEAL_SUPPORT_RANDOM_H

#include <cstdint>

namespace ceal {

/// SplitMix64: used both as a stand-alone generator and to seed Xoshiro.
inline uint64_t splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// A stateless hash of (Key, Round); tree contraction uses this so that a
/// node's coin flips are a pure function of its identity, which is what
/// makes re-executions reproduce the same contraction decisions.
inline uint64_t hashPair(uint64_t Key, uint64_t Round) {
  uint64_t State = Key * 0x9e3779b97f4a7c15ULL + Round;
  return splitMix64(State);
}

/// xoshiro256** by Blackman and Vigna; fast, high-quality, 64-bit output.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eed5eed5eedULL) {
    uint64_t S = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(S);
  }

  uint64_t next() {
    auto Rotl = [](uint64_t X, int K) {
      return (X << K) | (X >> (64 - K));
    };
    uint64_t Result = Rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = Rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound); Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool flip() { return next() & 1; }

private:
  uint64_t State[4];
};

} // namespace ceal

#endif // CEAL_SUPPORT_RANDOM_H
