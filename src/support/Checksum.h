//===- support/Checksum.h - Streaming 64-bit content checksum --*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming 64-bit checksum for the snapshot format (runtime/Snapshot).
/// Not cryptographic — it guards against I/O truncation, bit rot, and
/// fuzzer-grade corruption, where what matters is that (a) every byte of
/// input perturbs the digest, (b) the digest is independent of how the
/// input was split across update() calls, and (c) the total length is
/// mixed in, so a truncated-then-zero-padded stream cannot collide with
/// the original.
///
/// The word mixer is the same xorshift-multiply used by the memo indexes
/// (runtime/MemoTable.h hashMixWord), but the stream structure is built
/// for bandwidth: input is consumed in 256-byte blocks of 32 interleaved
/// lanes, one 8-byte word per lane per block, each lane an independent
/// serial mix chain. A single chain is latency-bound on its multiply;
/// 32 chains keep any multiplier saturated — four AVX-512 accumulators,
/// eight AVX2 ones, or plain scalar ILP — which is what lets snapshot
/// save and verified load run at memory-like speeds (the PR 6
/// measurements had checksumming at construction-bandwidth cost). The
/// block fold goes through the dispatched kernel
/// (support/simd/Simd.h checksumBlocks); every variant computes the
/// identical function, so digests do not depend on the selected ISA.
///
/// Lane words are read little-endian, making snapshot digests
/// byte-order-defined; the digest folds the 32 lane states, the
/// sub-block residual, and the total length, in that order.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_CHECKSUM_H
#define CEAL_SUPPORT_CHECKSUM_H

#include "support/simd/Simd.h"

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ceal {

class Checksum64 {
public:
  Checksum64() {
    // Distinct lane seeds: with equal seeds, input that is 8-byte
    // periodic would keep all lanes equal, discarding 31/32 of the
    // state on structured data.
    for (size_t L = 0; L < Lanes; ++L)
      Lanes64[L] = mixInto(LaneSeed, L);
  }

  /// Feeds \p Len bytes; digests are invariant under re-chunking.
  void update(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    Total += Len;
    if (CarryLen != 0) {
      size_t Take = BlockBytes - CarryLen;
      if (Take > Len)
        Take = Len;
      std::memcpy(Carry + CarryLen, P, Take);
      CarryLen += Take;
      P += Take;
      Len -= Take;
      if (CarryLen == BlockBytes) {
        simd::checksumBlocks(Lanes64, Carry, 1);
        CarryLen = 0;
      }
    }
    if (size_t NBlocks = Len / BlockBytes) {
      simd::checksumBlocks(Lanes64, P, NBlocks);
      P += NBlocks * BlockBytes;
      Len -= NBlocks * BlockBytes;
    }
    if (Len != 0) {
      std::memcpy(Carry + CarryLen, P, Len);
      CarryLen += Len;
    }
  }

  /// The digest of everything fed so far (does not consume the state, so
  /// callers may checksum a prefix and keep streaming).
  uint64_t digest() const {
    uint64_t H = DigestSeed;
    for (size_t L = 0; L < Lanes; ++L)
      H = mixInto(H, Lanes64[L]);
    // Residual: whole words first, then the final partial word
    // (zero-padded; unambiguous because the total length follows).
    size_t I = 0;
    for (; I + 8 <= CarryLen; I += 8) {
      uint64_t W;
      std::memcpy(&W, Carry + I, 8);
      H = mixInto(H, W);
    }
    uint64_t Last = 0;
    for (size_t B = 0; I < CarryLen; ++I, ++B)
      Last |= uint64_t(Carry[I]) << (8 * B);
    H = mixInto(H, Last);
    H = mixInto(H, Total);
    return H;
  }

  /// One-shot convenience.
  static uint64_t of(const void *Data, size_t Len) {
    Checksum64 C;
    C.update(Data, Len);
    return C.digest();
  }

private:
  static constexpr size_t Lanes = simd::HashLanes;
  static constexpr size_t BlockBytes = simd::ChecksumBlockBytes;
  static constexpr uint64_t LaneSeed = 0x4345414c53554d31ULL;
  static constexpr uint64_t DigestSeed = 0x4345414c53554d32ULL;

  static uint64_t mixInto(uint64_t H, uint64_t W) {
    return simd::mixStep(H, W);
  }

  uint64_t Lanes64[Lanes];
  uint64_t Total = 0;
  unsigned char Carry[BlockBytes];
  size_t CarryLen = 0;
};

} // namespace ceal

#endif // CEAL_SUPPORT_CHECKSUM_H
