//===- support/Checksum.h - Streaming 64-bit content checksum --*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming 64-bit checksum for the snapshot format (runtime/Snapshot).
/// Not cryptographic — it guards against I/O truncation, bit rot, and
/// fuzzer-grade corruption, where what matters is that (a) every byte of
/// input perturbs the digest, (b) the digest is independent of how the
/// input was split across update() calls, and (c) the total length is
/// mixed in, so a truncated-then-zero-padded stream cannot collide with
/// the original.
///
/// The word mixer is the same xorshift-multiply used by the memo indexes
/// (runtime/MemoTable.h hashMixWord), restated here so the support layer
/// does not depend on the runtime layer.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_CHECKSUM_H
#define CEAL_SUPPORT_CHECKSUM_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ceal {

class Checksum64 {
public:
  /// Feeds \p Len bytes; digests are invariant under re-chunking.
  void update(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    Total += Len;
    // Top up the carry buffer to a full word first.
    while (CarryLen != 0 && CarryLen < 8 && Len != 0) {
      Carry |= uint64_t(*P++) << (8 * CarryLen++);
      --Len;
    }
    if (CarryLen == 8) {
      mix(Carry);
      Carry = 0;
      CarryLen = 0;
    }
    while (Len >= 8) {
      uint64_t W;
      std::memcpy(&W, P, 8);
      mix(W);
      P += 8;
      Len -= 8;
    }
    while (Len != 0) {
      Carry |= uint64_t(*P++) << (8 * CarryLen++);
      --Len;
    }
  }

  /// The digest of everything fed so far (does not consume the state, so
  /// callers may checksum a prefix and keep streaming).
  uint64_t digest() const {
    uint64_t H = State;
    H = mixInto(H, Carry);
    H = mixInto(H, Total);
    return H;
  }

  /// One-shot convenience.
  static uint64_t of(const void *Data, size_t Len) {
    Checksum64 C;
    C.update(Data, Len);
    return C.digest();
  }

private:
  static uint64_t mixInto(uint64_t H, uint64_t W) {
    H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    return H;
  }
  void mix(uint64_t W) { State = mixInto(State, W); }

  uint64_t State = 0x4345414c53554d30ULL; // arbitrary nonzero seed
  uint64_t Total = 0;
  uint64_t Carry = 0;
  unsigned CarryLen = 0;
};

} // namespace ceal

#endif // CEAL_SUPPORT_CHECKSUM_H
