//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin monotonic wall-clock timer used by the table/figure harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_TIMER_H
#define CEAL_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace ceal {

/// Measures elapsed wall time in seconds from construction or restart().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  /// Seconds elapsed since construction/restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  /// Monotonic nanoseconds since an arbitrary epoch — the shared clock
  /// for the propagation profiler's phase accumulators.
  static uint64_t nowNs() {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now().time_since_epoch())
                        .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace ceal

#endif // CEAL_SUPPORT_TIMER_H
