//===- support/FileIo.h - Minimal POSIX file helpers -----------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small RAII wrapper over a POSIX file descriptor with full-length
/// positional reads and writes, for the snapshot save/load paths
/// (runtime/Snapshot). Offsets are explicit (pread/pwrite) so the writer
/// can lay out sections in any order and the loader never depends on a
/// shared file cursor; every short transfer is retried until the full
/// length moved or a real error occurred.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_FILEIO_H
#define CEAL_SUPPORT_FILEIO_H

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <fcntl.h>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

namespace ceal {
namespace io {

class File {
public:
  File() = default;
  File(const File &) = delete;
  File &operator=(const File &) = delete;
  File(File &&O) : Fd(O.Fd) { O.Fd = -1; }
  File &operator=(File &&O) {
    if (this != &O) {
      close();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  ~File() { close(); }

  static File openRead(const std::string &Path) {
    File F;
    F.Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    return F;
  }
  /// Creates (or truncates) \p Path for writing.
  static File createTrunc(const std::string &Path) {
    File F;
    F.Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
    return F;
  }

  bool ok() const { return Fd >= 0; }
  explicit operator bool() const { return ok(); }
  int fd() const { return Fd; }

  void close() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  /// File size in bytes, or -1 on error.
  int64_t size() const {
    struct stat St;
    if (::fstat(Fd, &St) != 0)
      return -1;
    return static_cast<int64_t>(St.st_size);
  }

  /// Reads exactly \p Len bytes at \p Off; false on error or short file.
  bool preadAll(void *Buf, size_t Len, uint64_t Off) const {
    auto *P = static_cast<char *>(Buf);
    while (Len > 0) {
      ssize_t N = ::pread(Fd, P, Len, static_cast<off_t>(Off));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (N == 0)
        return false; // Unexpected EOF.
      P += N;
      Off += static_cast<uint64_t>(N);
      Len -= static_cast<size_t>(N);
    }
    return true;
  }

  /// Writes exactly \p Len bytes at \p Off; false on error.
  bool pwriteAll(const void *Buf, size_t Len, uint64_t Off) const {
    const auto *P = static_cast<const char *>(Buf);
    while (Len > 0) {
      ssize_t N = ::pwrite(Fd, P, Len, static_cast<off_t>(Off));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      P += N;
      Off += static_cast<uint64_t>(N);
      Len -= static_cast<size_t>(N);
    }
    return true;
  }

  /// Extends/truncates the file to \p Len bytes (holes read as zeros).
  bool truncateTo(uint64_t Len) const {
    return ::ftruncate(Fd, static_cast<off_t>(Len)) == 0;
  }

private:
  int Fd = -1;
};

} // namespace io
} // namespace ceal

#endif // CEAL_SUPPORT_FILEIO_H
