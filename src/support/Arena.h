//===- support/Arena.h - Bump arena with size-class freelists --*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator with per-size-class freelists. The self-adjusting
/// run-time system allocates all trace structures (timestamps, trace nodes,
/// closures, user blocks) from an Arena so that (a) allocation is a pointer
/// bump, (b) freed trace structures are recycled without touching malloc,
/// and (c) the high-water mark of live bytes gives the "max live" metric
/// the paper reports in Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_ARENA_H
#define CEAL_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>

namespace ceal {

/// A bump allocator with size-class freelists and live-byte accounting.
///
/// Blocks up to MaxSmallSize bytes are rounded to 16-byte classes and
/// recycled through freelists; larger blocks fall back to operator new and
/// are freed eagerly. All small storage is released when the arena is
/// destroyed, so clients may drop whole traces in O(#chunks).
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// Allocates \p Size bytes aligned to 16. Defined in the header so the
  /// size-class fast path (freelist pop or pointer bump) inlines into the
  /// trace hot paths; the chunk refill and the rare large-block path stay
  /// out of line.
  void *allocate(size_t Size) {
    assert(Size > 0 && "zero-size allocation");
    ++AllocCount;
    if (Size > MaxSmallSize)
      return allocateLarge(Size);
    size_t Index = classIndex(Size);
    size_t Rounded = classSize(Index);
    LiveBytes += Rounded;
    TotalAllocated += Rounded;
    if (LiveBytes > MaxLiveBytes)
      MaxLiveBytes = LiveBytes;
    if (FreeCell *Cell = FreeLists[Index]) {
      FreeLists[Index] = Cell->Next;
      return Cell;
    }
    if (BumpPtr + Rounded <= BumpEnd) {
      void *Result = BumpPtr;
      BumpPtr += Rounded;
      return Result;
    }
    return allocateSlow(Rounded);
  }

  /// Returns a block previously obtained from allocate() with \p Size.
  void deallocate(void *Ptr, size_t Size) {
    assert(Ptr && "deallocating null");
    if (Size > MaxSmallSize)
      return deallocateLarge(Ptr, Size);
    size_t Index = classIndex(Size);
    size_t Rounded = classSize(Index);
    assert(LiveBytes >= Rounded && "freelist accounting underflow");
    LiveBytes -= Rounded;
    auto *Cell = static_cast<FreeCell *>(Ptr);
    Cell->Next = FreeLists[Index];
    FreeLists[Index] = Cell;
  }

  /// Typed helper: allocate and default-construct a T.
  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T));
    return new (Mem) T(static_cast<Args &&>(As)...);
  }

  /// Typed helper: destroy and free a T obtained from create().
  template <typename T> void destroy(T *Ptr) {
    Ptr->~T();
    deallocate(Ptr, sizeof(T));
  }

  /// Pre-reserves at least \p Bytes of contiguous bump space (an
  /// input-size hint: one chunk allocation up front instead of a refill
  /// per chunk during trace construction). The current chunk's remaining
  /// tail is abandoned if it is too small, so call this before a large
  /// allocation burst, not inside one. No effect on liveBytes().
  void reserve(size_t Bytes);

  /// Bytes currently handed out to clients.
  size_t liveBytes() const { return LiveBytes; }

  /// How many liveBytes a block of \p Size accounts for: small sizes
  /// round up to their 16-byte class, large ones are exact. Auditors use
  /// this to reconcile external bookkeeping with liveBytes().
  static size_t accountedSize(size_t Size) {
    return Size > MaxSmallSize ? Size : classSize(classIndex(Size));
  }

  /// High-water mark of liveBytes() since construction (or resetStats()).
  size_t maxLiveBytes() const { return MaxLiveBytes; }

  /// Total bytes ever handed out (monotone; used by the simulated GC).
  size_t totalAllocatedBytes() const { return TotalAllocated; }

  /// Number of allocate() calls served.
  size_t allocationCount() const { return AllocCount; }

  void resetStats() {
    MaxLiveBytes = LiveBytes;
    TotalAllocated = 0;
    AllocCount = 0;
  }

private:
  static constexpr size_t Alignment = 16;
  static constexpr size_t MaxSmallSize = 512;
  static constexpr size_t NumClasses = MaxSmallSize / Alignment;
  static constexpr size_t ChunkSize = 1 << 20;
  /// Chunk sizes double per refill up to this cap, so a trace of B bytes
  /// takes O(log B) refills instead of B / ChunkSize.
  static constexpr size_t MaxChunkSize = size_t(1) << 25;

  struct FreeCell {
    FreeCell *Next;
  };
  struct Chunk {
    Chunk *Next;
    // Payload follows.
  };

  static size_t classIndex(size_t Size) {
    assert(Size > 0 && Size <= MaxSmallSize && "not a small size");
    return (Size + Alignment - 1) / Alignment - 1;
  }
  static size_t classSize(size_t Index) { return (Index + 1) * Alignment; }

  void *allocateSlow(size_t RoundedSize);
  void *allocateLarge(size_t Size);
  void deallocateLarge(void *Ptr, size_t Size);
  /// Installs a fresh chunk with \p PayloadBytes of bump space.
  void newChunk(size_t PayloadBytes);

  Chunk *Chunks = nullptr;
  char *BumpPtr = nullptr;
  char *BumpEnd = nullptr;
  size_t NextChunkBytes = ChunkSize;
  FreeCell *FreeLists[NumClasses] = {};

  size_t LiveBytes = 0;
  size_t MaxLiveBytes = 0;
  size_t TotalAllocated = 0;
  size_t AllocCount = 0;
};

} // namespace ceal

#endif // CEAL_SUPPORT_ARENA_H
