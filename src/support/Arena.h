//===- support/Arena.h - Region arena with 32-bit handles ------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A region-based bump allocator with per-size-class freelists and 32-bit
/// block handles. The self-adjusting run-time system allocates all trace
/// structures (timestamps, trace nodes, closures, user blocks) from an
/// Arena so that (a) allocation is a pointer bump, (b) freed trace
/// structures are recycled without touching malloc, (c) the high-water
/// mark of live bytes gives the "max live" metric the paper reports in
/// Tables 1 and 2, and (d) every block is addressable by a 32-bit Handle
/// — half the width of a pointer — so trace nodes can link to each other
/// in 4 bytes per edge instead of 8.
///
/// Handles work because each Arena owns one contiguous virtual-memory
/// region (mmap with MAP_NORESERVE: address space is reserved up front,
/// physical pages materialize only when touched). A Handle is the block's
/// byte offset into the region divided by the 8-byte allocation grain;
/// handle 0 is reserved as null (the bump pointer starts past offset 0).
/// The default 8 GB region keeps every handle below 2^30, leaving the
/// top handle bits free for client tags (the trace end-timestamp tag).
/// Exhausting the region — minting a handle past the 32-bit-addressable
/// space — is a checkAlways hard failure, never a silent wrap.
///
/// Under the CEAL_WIDE_TRACE build (see the CMake option of the same
/// name) Handle<T> widens to a plain pointer with the same API, so the
/// pre-compression trace layout stays buildable for A/B measurement.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_SUPPORT_ARENA_H
#define CEAL_SUPPORT_ARENA_H

#include "support/SpinLock.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <unordered_map>

namespace ceal {

/// A 32-bit reference to a block in an Arena region (or, under
/// CEAL_WIDE_TRACE, a plain pointer with the same interface). Resolution
/// goes through the owning Arena: `A.ptr(H)` and `A.handle(P)`.
/// Default-constructed handles are null and test false.
/// Like a raw pointer, the default constructor leaves a Handle
/// uninitialized (so the trace's RawInit node constructors stay free of
/// dead stores); value-initialize — `Handle<T>{}` or `Handle<T>()` — for
/// the null handle.
#ifdef CEAL_WIDE_TRACE
template <typename T> struct Handle {
  T *Ptr;

  Handle() = default;
  explicit Handle(T *P) : Ptr(P) {}
  explicit operator bool() const { return Ptr != nullptr; }
  bool operator==(const Handle &O) const { return Ptr == O.Ptr; }
  bool operator!=(const Handle &O) const { return Ptr != O.Ptr; }
};
#else
template <typename T> struct Handle {
  uint32_t Bits;

  Handle() = default;
  explicit Handle(uint32_t B) : Bits(B) {}
  explicit operator bool() const { return Bits != 0; }
  bool operator==(const Handle &O) const { return Bits == O.Bits; }
  bool operator!=(const Handle &O) const { return Bits != O.Bits; }
};

static_assert(sizeof(Handle<int>) == 4, "Handle must be half a pointer");
#endif

/// Re-types a handle along a static_cast-compatible hierarchy edge (e.g.
/// Handle<Use> -> Handle<WriteNode> after inspecting the node's Kind).
/// Valid only for single-inheritance chains where the addresses coincide.
template <typename To, typename From>
inline Handle<To> handle_cast(Handle<From> H) {
#ifdef CEAL_WIDE_TRACE
  return Handle<To>(static_cast<To *>(H.Ptr));
#else
  return Handle<To>(H.Bits);
#endif
}

/// A single-region bump allocator with size-class freelists, live-byte
/// accounting, and handle minting.
///
/// Blocks up to MaxSmallSize bytes are rounded to 8-byte classes and
/// recycled through per-class freelists; larger blocks are bump-allocated
/// from the same region and recycled through a per-size side table, so
/// *every* block — including large user allocations that contain interior
/// trace structures — lives inside the region and is handle-addressable.
/// The whole region is released when the arena is destroyed, so clients
/// may drop whole traces in O(1).
class Arena {
public:
  /// Allocation grain: every block size is a multiple of this, every
  /// block address is aligned to it, and handles count in units of it.
  static constexpr size_t HandleGrain = 8;
  /// Default virtual region per arena. Address space only (MAP_NORESERVE)
  /// — the committed footprint is just the pages ever touched.
  static constexpr size_t DefaultRegionBytes = size_t(8) << 30;
  /// Hard cap: offsets must stay handle-encodable (2^32 grains).
  static constexpr size_t MaxRegionBytes = (size_t(1) << 32) * HandleGrain;

  /// Maps a region of \p RegionBytes (rounded up to the page size). If
  /// the mmap fails, retries at geometrically smaller sizes down to a
  /// floor before giving up with a fatal error.
  explicit Arena(size_t RegionBytes = DefaultRegionBytes);
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// Allocates \p Size bytes aligned to HandleGrain. Defined in the
  /// header so the size-class fast path (freelist pop or pointer bump)
  /// inlines into the trace hot paths; the large-block path stays out of
  /// line.
  void *allocate(size_t Size) {
    assert(Size > 0 && "zero-size allocation");
    if (__builtin_expect(ShardMode, 0))
      return allocateSharded(Size);
    ++AllocCount;
    if (Size > MaxSmallSize)
      return allocateLarge(Size);
    size_t Index = classIndex(Size);
    size_t Rounded = classSize(Index);
    LiveBytes += Rounded;
    TotalAllocated += Rounded;
    if (LiveBytes > MaxLiveBytes)
      MaxLiveBytes = LiveBytes;
    if (FreeCell *Cell = FreeLists[Index]) {
      FreeLists[Index] = Cell->Next;
      return Cell;
    }
    char *Result = BumpPtr;
    if (Result + Rounded > BumpEnd)
      regionExhausted();
    BumpPtr = Result + Rounded;
    return Result;
  }

  /// Returns a block previously obtained from allocate() with \p Size.
  void deallocate(void *Ptr, size_t Size) {
    assert(Ptr && "deallocating null");
    if (__builtin_expect(ShardMode, 0))
      return deallocateSharded(Ptr, Size);
    if (Size > MaxSmallSize)
      return deallocateLarge(Ptr, Size);
    size_t Index = classIndex(Size);
    size_t Rounded = classSize(Index);
    assert(LiveBytes >= Rounded && "freelist accounting underflow");
    LiveBytes -= Rounded;
    auto *Cell = static_cast<FreeCell *>(Ptr);
    Cell->Next = FreeLists[Index];
    FreeLists[Index] = Cell;
  }

  /// Typed helper: allocate and default-construct a T.
  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T));
    return new (Mem) T(static_cast<Args &&>(As)...);
  }

  /// Typed helper: destroy and free a T obtained from create().
  template <typename T> void destroy(T *Ptr) {
    Ptr->~T();
    deallocate(Ptr, sizeof(T));
  }

  /// Resolves a handle minted by this arena to a pointer (null for the
  /// null handle). O(1): one shift and one add off the region base.
  template <typename T> T *ptr(Handle<T> H) const {
#ifdef CEAL_WIDE_TRACE
    return H.Ptr;
#else
    if (!H.Bits)
      return nullptr;
    return reinterpret_cast<T *>(Base + uint64_t(H.Bits) * HandleGrain);
#endif
  }

  /// Mints the handle for a block obtained from this arena's allocate().
  /// O(1): a subtract and a shift. Null pointers mint the null handle.
  template <typename T> Handle<T> handle(const T *P) const {
#ifdef CEAL_WIDE_TRACE
    return Handle<T>(const_cast<T *>(P));
#else
    if (!P)
      return Handle<T>();
    uintptr_t Off = reinterpret_cast<uintptr_t>(P) -
                    reinterpret_cast<uintptr_t>(Base);
    assert(Off >= HandleGrain && Off < RegionBytes &&
           (Off % HandleGrain) == 0 && "pointer not from this arena");
    return Handle<T>(static_cast<uint32_t>(Off / HandleGrain));
#endif
  }

  /// True if \p Bits decodes to an address inside the bump-allocated part
  /// of the region (auditors bounds-check every handle through this; it
  /// accepts any in-bounds offset, not just live-block starts).
  bool handleInBounds(uint32_t Bits) const {
    return uint64_t(Bits) * HandleGrain <
           static_cast<uint64_t>(BumpPtr - Base);
  }

  /// The region's base address (auditors only).
  const void *regionBase() const { return Base; }
  /// Total virtual bytes this arena's region spans.
  size_t regionBytes() const { return RegionBytes; }
  /// Bytes of the region consumed by the bump pointer so far (includes
  /// blocks currently parked on freelists).
  size_t bumpUsedBytes() const { return static_cast<size_t>(BumpPtr - Base); }

  /// Pre-reserves bump space for \p Bytes of upcoming allocations. With a
  /// single up-front region this is an overflow pre-check only — the
  /// address space is already contiguous — kept as an API so callers can
  /// fail fast before a burst rather than mid-trace.
  void reserve(size_t Bytes);

  //===--------------------------------------------------------------===//
  // Snapshot plumbing (runtime/Snapshot). Not for general use.
  //===--------------------------------------------------------------===//

  /// Releases this arena's region and claims a fresh *anonymous* region at
  /// exactly [\p WantBase, \p WantBase + \p WantBytes) — the same-base
  /// remap a snapshot load needs so that every raw pointer serialized
  /// inside the region stays valid verbatim. The claim is atomic
  /// (MAP_FIXED_NOREPLACE): if any part of the target range is already
  /// mapped, nothing is clobbered, the arena re-acquires an empty region
  /// at an arbitrary base, and this returns false. On success the arena is
  /// empty (bump at one grain, freelists clear, stats zeroed) at the fixed
  /// base.
  bool remapTo(char *WantBase, size_t WantBytes);

  /// Maps \p Bytes of \p Fd starting at the page-aligned \p FileOffset
  /// copy-on-write (MAP_PRIVATE) over the start of the region, replacing
  /// the anonymous pages there; the rest of the region stays anonymous.
  /// The mmap warm-start path uses this to adopt a snapshot's arena image
  /// without copying it. Returns false on mmap failure.
  bool mapFilePrefix(int Fd, uint64_t FileOffset, size_t Bytes);

  /// Bytes currently handed out to clients.
  size_t liveBytes() const { return LiveBytes; }

  /// How many liveBytes a block of \p Size accounts for: all sizes round
  /// up to the 8-byte grain, small ones to their size class (the same
  /// thing — classes are grain-spaced). Auditors use this to reconcile
  /// external bookkeeping with liveBytes().
  static size_t accountedSize(size_t Size) {
    return (Size + HandleGrain - 1) & ~(HandleGrain - 1);
  }

  /// High-water mark of liveBytes() since construction (or resetStats()).
  size_t maxLiveBytes() const { return MaxLiveBytes; }

  /// Total bytes ever handed out (monotone; used by the simulated GC).
  size_t totalAllocatedBytes() const { return TotalAllocated; }

  /// Number of allocate() calls served.
  size_t allocationCount() const { return AllocCount; }

  void resetStats() {
    MaxLiveBytes = LiveBytes;
    TotalAllocated = 0;
    AllocCount = 0;
  }

  //===--------------------------------------------------------------===//
  // Parallel shard mode (runtime/ParallelPropagate). While armed, each
  // bound worker thread allocates from a private shard — its own bump
  // chunk (carved from the shared region under a lock, 64 KB at a time)
  // and per-class freelists — so the trace hot path stays lock-free
  // across workers. endShards() splices the shard freelists back into
  // the central lists and reconciles the statistics, restoring the
  // exact sequential accounting (liveBytes is delta-exact; the
  // transient max-live high-water mark inside a parallel phase is
  // approximated at the join). Shard bump chunks persist across phases
  // so repeated propagations do not leak region space.
  //===--------------------------------------------------------------===//

  static constexpr unsigned MaxShards = 8;
  /// Bytes carved from the central bump per shard refill.
  static constexpr size_t ShardChunkBytes = size_t(64) << 10;

  /// The calling thread's shard binding, -1 when unbound. Shared by all
  /// arenas: a propagation worker uses one id against both the trace
  /// arena and the order-maintenance arena.
  inline static thread_local int ShardTls = -1;

  /// Arms shard mode with \p N shards (ids 0..N-1). Single-threaded.
  void beginShards(unsigned N);
  /// Disarms shard mode, merging freelists and statistics. The worker
  /// threads must have joined. Single-threaded.
  void endShards();
  bool sharded() const { return ShardMode; }

  static constexpr size_t MaxSmallSize = 512;

private:
  /// The snapshot subsystem serializes and restores the scalar state
  /// (bump frontier, freelist heads, statistics) directly.
  friend class Snapshot;

  static constexpr size_t NumClasses = MaxSmallSize / HandleGrain;

  struct FreeCell {
    FreeCell *Next;
  };

  static size_t classIndex(size_t Size) {
    assert(Size > 0 && Size <= MaxSmallSize && "not a small size");
    return (Size + HandleGrain - 1) / HandleGrain - 1;
  }
  static size_t classSize(size_t Index) { return (Index + 1) * HandleGrain; }

  void *allocateLarge(size_t Size);
  void deallocateLarge(void *Ptr, size_t Size);
  [[noreturn]] void regionExhausted() const;

  /// One worker's private allocation state. Freelists keep a tail
  /// pointer so endShards() can splice them into the central lists in
  /// O(1) per class. The bump chunk persists across shard phases (it is
  /// recycled, never leaked), but always points into the current region
  /// — resetShards() clears it whenever the region moves.
  struct alignas(64) Shard {
    FreeCell *Free[NumClasses] = {};
    FreeCell *FreeTail[NumClasses] = {};
    char *BumpPtr = nullptr;
    char *BumpEnd = nullptr;
    int64_t LiveDelta = 0;
    uint64_t TotalDelta = 0;
    uint64_t AllocDelta = 0;
  };

  void *allocateSharded(size_t Size);
  void deallocateSharded(void *Ptr, size_t Size);
  void refillShard(Shard &S, size_t Need);
  void resetShards();

  char *Base = nullptr;
  char *BumpPtr = nullptr;
  char *BumpEnd = nullptr;
  size_t RegionBytes = 0;
  FreeCell *FreeLists[NumClasses] = {};
  /// Freelists for recycled large blocks, keyed by grain-rounded size.
  std::unordered_map<size_t, FreeCell *> LargeFree;

  size_t LiveBytes = 0;
  size_t MaxLiveBytes = 0;
  size_t TotalAllocated = 0;
  size_t AllocCount = 0;

  bool ShardMode = false;
  unsigned ActiveShards = 0;
  /// Guards the central bump frontier and large-block lists while shard
  /// mode is armed (shard chunk refills, >MaxSmallSize allocations).
  SpinLock CentralLock;
  Shard Shards[MaxShards];
};

} // namespace ceal

#endif // CEAL_SUPPORT_ARENA_H
