//===- baseline/SaSmlSim.h - SaSML-style comparator -------------*- C++ -*-===//
//
// Part of the CEAL reproduction. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparator for Table 2 and Fig. 14. The paper compares against
/// SaSML, the SML self-adjusting library of Ley-Wild et al. running under
/// MLton; that system is not available here, so — per the substitution
/// rule recorded in DESIGN.md — we model the two properties the paper
/// attributes its behaviour to:
///
///  * constant-factor overhead from continuation/closure allocation and
///    boxed values: the basic translation allocates one heap closure per
///    tail jump and fattens every trace record (ExtraAllocsPerRead,
///    BoxBytesPerNode);
///
///  * super-linear degradation under memory pressure from a tracing GC
///    whose collections cost time proportional to the live trace: the
///    bounded-heap simulation scans all live timestamps whenever
///    allocation exhausts the heap headroom, and reports out-of-memory
///    when the live trace itself no longer fits (HeapLimitBytes) — which
///    is where the paper's Fig. 14 lines end.
///
/// Algorithms and correctness are identical to the CEAL runtime; only
/// cost behaviour differs, which is exactly what Table 2 and Fig. 14
/// measure.
///
//===----------------------------------------------------------------------===//

#ifndef CEAL_BASELINE_SASMLSIM_H
#define CEAL_BASELINE_SASMLSIM_H

#include "runtime/Runtime.h"

namespace ceal {
namespace baseline {

/// Runtime configuration modelling SaSML's cost behaviour. \p
/// HeapLimitBytes bounds the simulated collected heap (0 = unbounded,
/// used for Table 2's plentiful-memory comparison). \p Audit lets the
/// comparison suites run the baseline shape with the trace sanitizer on:
/// the bounded-heap reclamation paths are exactly where a trace/accounting
/// bug would hide, so tests audit them; benchmarks leave it Off.
inline Runtime::Config sasmlConfig(size_t HeapLimitBytes = 0,
                                   AuditLevel Audit = AuditLevel::Off) {
  Runtime::Config C;
  C.Audit = Audit;
  // One boxed continuation per tail jump: in normalized code tail jumps
  // and reads are in proportion; charge the closure traffic at the read.
  C.ExtraAllocsPerRead = 6;
  // Boxed values and fatter closure records: SaSML's space overhead is
  // 3-5x in Table 2; trace nodes here are 48-96 bytes, so an extra 160
  // bytes per node lands the ratio in the paper's range.
  C.BoxBytesPerNode = 288;
  // Per-operation interpretation/boxing work, calibrated so from-scratch
  // runs land ~6-12x slower than the CEAL runtime (Table 2's band).
  C.SimSpinPerNode = 1500;
  C.HeapLimitBytes = HeapLimitBytes;
  return C;
}

} // namespace baseline
} // namespace ceal

#endif // CEAL_BASELINE_SASMLSIM_H
