#!/usr/bin/env python3
"""Gate the parallel change-propagation scaling sweep.

Reads the "parallel_propagate" section of a BENCH_rt.json (or
BENCH_table1.json) — per app, the batched-edit update loop at 1, 2, and
4 worker threads (bench/AppBench.h runParallelLoop) — and enforces:

 * Correctness everywhere: every row's trace-shape digest must match the
   app's 1-thread (sequential) row. A mismatch means a parallel phase
   produced a trace a sequential propagation would not have — the
   invariant runtime/ParallelPropagate is built on, and the one thing
   that must hold regardless of the machine.
 * Scaling, when the machine can show it: quickhull at 4 threads must
   finish its loop at least --min-speedup times faster than at 1 thread
   (default 1.2x at smoke scale). The gate only applies when the
   recorded host_cpus is at least the row's thread count — on fewer
   cores the "parallel" loop oversubscribes one core and its wall time
   says nothing about scaling, so the speedup check is skipped with a
   notice (exit 0): the digests above still certify correctness.

Exit status: 0 all applicable gates pass (including the skipped-speedup
case); 1 a gate failed; 2 the bench file has no usable
"parallel_propagate" section — reported with a diagnostic naming the
file rather than a traceback.

Usage:
    check_parallel_speedup.py [BENCH_rt.json] [--min-speedup R]
"""

import json
import sys

MIN_SPEEDUP = 1.2
GATED_APP = "quickhull"
GATED_THREADS = 4


def main(argv):
    path = "BENCH_rt.json"
    min_speedup = MIN_SPEEDUP
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--min-speedup":
            min_speedup = float(args.pop(0))
        else:
            path = a

    with open(path) as f:
        bench = json.load(f)
    if "parallel_propagate" not in bench:
        print(f"{path}: no \"parallel_propagate\" section — regenerate the "
              f"bench JSON with a build that emits it (bench/rt_microbench) "
              f"before gating on it", file=sys.stderr)
        return 2
    section = bench["parallel_propagate"] or {}
    rows = section.get("apps") or []
    if not rows:
        print(f"{path}: \"parallel_propagate\" section present but has no "
              f"app rows — the emitting bench run was truncated or filtered",
              file=sys.stderr)
        return 2
    host_cpus = int(section.get("host_cpus", 0))

    failures = []
    base = {}  # app name -> 1-thread row
    for row in rows:
        if row.get("threads") == 1:
            base[row["name"]] = row

    for row in rows:
        name = row["name"]
        threads = row.get("threads", 1)
        ok = row.get("digest_matches_sequential", False)
        seq = base.get(name)
        speed = (seq["update_loop_seconds"] / row["update_loop_seconds"]
                 if seq and row.get("update_loop_seconds") else 0.0)
        print(f"{name:10s} threads={threads} "
              f"par-runs={row.get('parallel_runs', 0):4d} "
              f"fallbacks={row.get('fallbacks', 0):4d} "
              f"conflicts={row.get('conflicts', 0):4d} "
              f"speedup={speed:5.2f}x "
              f"digest={'match' if ok else 'MISMATCH'}")
        if not ok:
            failures.append(
                f"{name} @ {threads} threads: trace-shape digest differs "
                f"from the sequential run — a parallel phase changed the "
                f"trace")
        if name not in base:
            failures.append(f"{name}: no 1-thread baseline row in {path}")

    gated = [r for r in rows
             if r["name"] == GATED_APP and r.get("threads") == GATED_THREADS]
    if not gated:
        failures.append(f"{GATED_APP}: no {GATED_THREADS}-thread row "
                        f"in {path}")
    elif host_cpus < GATED_THREADS:
        print(f"speedup gate skipped: recorded host_cpus={host_cpus} < "
              f"{GATED_THREADS} threads — wall times on an oversubscribed "
              f"core do not measure scaling (digest checks above still "
              f"apply)")
    else:
        row = gated[0]
        seq = base.get(GATED_APP)
        speed = (seq["update_loop_seconds"] / row["update_loop_seconds"]
                 if seq and row.get("update_loop_seconds") else 0.0)
        if speed < min_speedup:
            failures.append(
                f"{GATED_APP} @ {GATED_THREADS} threads: speedup "
                f"{speed:.2f}x below the {min_speedup:.2f}x floor "
                f"(host_cpus={host_cpus})")

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
