#!/usr/bin/env python3
"""Gate the payoff of trace persistence: warm-start must beat rebuild.

Reads a BENCH_rt.json (or BENCH_table1.json) produced by a bench run
and checks that loading a checkpointed trace via Snapshot::mmapWarmStart
is at least --min-ratio times faster than the self-adjusting
from-scratch construction it replaces (self_seconds /
warm_start_seconds). The default gate is quickhull only — the app the
warm-start story was built for (its 300x-odd from-scratch overhead is
the cost a reload amortizes away) and the most stable ratio at smoke
scale; the other apps' ratios are printed for the record. The bench
measures the default (trusted-file) warm start, which verifies the
header and metadata sections but skips the O(trace) content checksums
and validator — that skip is the whole payoff; a verified warm start
costs about as much as rebuilding (see EXPERIMENTS.md "Warm-start
accounting"), so a ratio collapse here usually means an O(trace) pass
crept back into the fast path.

A zero/missing warm_start_seconds means the driver could not checkpoint
(save refused or a load failed) — that fails the gated app loudly
rather than passing vacuously.

Usage:
    check_warmstart.py [BENCH_rt.json] [--min-ratio R] [--apps a,b,...]
"""

import json
import sys

MIN_RATIO = 5.0
GATED_APPS = ["quickhull"]


def main(argv):
    path = "BENCH_rt.json"
    min_ratio = MIN_RATIO
    gated = list(GATED_APPS)
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--min-ratio":
            min_ratio = float(args.pop(0))
        elif a == "--apps":
            gated = [s for s in args.pop(0).split(",") if s]
        else:
            path = a

    with open(path) as f:
        bench = json.load(f)
    rows = bench.get("update_bench") or bench.get("rows") or []
    by_name = {row["name"]: row for row in rows}

    failures = []
    for name in sorted(by_name):
        row = by_name[name]
        self_s = row.get("self_seconds", 0)
        warm_s = row.get("warm_start_seconds", 0)
        is_gated = name in gated
        if not warm_s:
            print(f"{name:10s} no warm-start measurement"
                  f"{'  (gated)' if is_gated else ''}")
            if is_gated:
                failures.append(f"{name}: warm_start_seconds missing or zero "
                                f"(checkpoint save/load failed in the bench)")
            continue
        ratio = self_s / warm_s
        status = ("ok" if ratio >= min_ratio else "FAIL") if is_gated \
            else "info"
        print(f"{name:10s} self={self_s:.5f}s  warm={warm_s:.5f}s  "
              f"ratio={ratio:7.1f}x  {status}")
        if is_gated and ratio < min_ratio:
            failures.append(
                f"{name}: warm-start only {ratio:.1f}x faster than "
                f"from-scratch (gate: >= {min_ratio:.1f}x)")

    for name in gated:
        if name not in by_name:
            failures.append(f"{name}: no bench row in {path}")

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
