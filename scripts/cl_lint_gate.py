#!/usr/bin/env python3
"""The cl-lint CI gate: shipped samples and example CL sources lint clean.

Runs `cl-lint --json --sample=all <files...>`, parses the machine-readable
report, and fails with a per-program account if any program has a parse
error, error-, warning-, or note-severity diagnostics. Also cross-checks
the stable exit-code contract (0 clean / 1 lints / 2 errors) against the
JSON content, so a drift between the two surfaces here instead of
silently weakening the gate.

Usage:
    cl_lint_gate.py CL_LINT_BINARY [file.cl ...]
"""

import json
import subprocess
import sys


def main(argv):
    if len(argv) < 2:
        print("usage: cl_lint_gate.py CL_LINT_BINARY [file.cl ...]",
              file=sys.stderr)
        return 2
    cmd = [argv[1], "--json", "--sample=all"] + argv[2:]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.stderr:
        sys.stderr.write(proc.stderr)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"cl_lint_gate: cl-lint --json output is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    failures = []
    any_error = False
    any_lint = False
    for prog in report.get("programs", []):
        name = prog.get("name", "<unnamed>")
        if "parse_error" in prog:
            any_error = True
            failures.append(f"{name}: parse error: {prog['parse_error']}")
            continue
        errors = prog.get("errors", 0)
        warnings = prog.get("warnings", 0)
        notes = prog.get("notes", 0)
        interf = prog.get("interference", {})
        counts = interf.get("pair_counts", {})
        print(f"{name}: errors={errors} warnings={warnings} notes={notes} "
              f"entry pairs: {counts.get('disjoint', 0)} disjoint / "
              f"{counts.get('ordered', 0)} ordered / "
              f"{counts.get('conflicting', 0)} conflicting")
        any_error |= errors > 0
        any_lint |= warnings > 0 or notes > 0
        for diag in prog.get("diagnostics", []):
            failures.append(
                f"{name}: {diag.get('severity')}[{diag.get('check')}] "
                f"{diag.get('function', '?')}/{diag.get('block', '?')}: "
                f"{diag.get('message')}")

    expected = 2 if any_error else 1 if any_lint else 0
    if proc.returncode != expected:
        failures.append(
            f"exit-code contract violated: cl-lint exited {proc.returncode} "
            f"but the JSON content implies {expected} "
            "(0 clean / 1 lints / 2 errors)")

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
