#!/usr/bin/env python3
"""Gate the SIMD kernel matrix.

Reads the "simd_kernels" section of a BENCH_rt.json — per dispatched
kernel (support/simd: streaming checksum, batched memo hashing, handle
bounds sweep, bucket-index gather, OM relabel rewrite), ns/op for every
variant compiled into the binary and runnable on the recording host, at
a cache-resident and a full-scale working-set size — and enforces:

 * Correctness everywhere: every kernel's "differential_checked" flag
   must be true. The emitter runs every compiled-and-runnable variant
   against the scalar reference on a shared random input (including a
   non-lane-multiple length, so tails are exercised); a false here means
   a variant computed a different function, which would silently corrupt
   checksums, memo bucketing, or OM labels depending on the host CPU.
 * No dispatched regression: for every kernel, the dispatcher-selected
   variant's ns/op at the largest size must be at or below scalar's
   within --tolerance (default 10%, absorbing run-to-run noise on
   near-parity kernels). The dispatcher exists to never be slower than
   the reference; a miss means the selection heuristic or a variant
   rotted.
 * The point of the exercise: at least one kernel must show the
   selected variant at --min-best-speedup x scalar or better (default
   2.0) at the largest size. If nothing clears 2x on a host whose
   widest variant is vectorized, the kernels have decayed into
   overhead.

When the recording host's max_supported is "scalar" (non-x86 builds,
feature-poor CPUs, or a scalar-only compile), only the differential
flags are checked and the performance gates are skipped with a notice
(exit 0): there is no vector variant whose regression could be gated.

Exit status: 0 all applicable gates pass; 1 a gate failed; 2 the bench
file has no usable "simd_kernels" section — reported with a diagnostic
naming the file rather than a traceback.

Usage:
    check_simd_kernels.py [BENCH_rt.json] [--tolerance F]
                          [--min-best-speedup R]
"""

import json
import sys

TOLERANCE = 0.10
MIN_BEST_SPEEDUP = 2.0


def main(argv):
    path = "BENCH_rt.json"
    tolerance = TOLERANCE
    min_best = MIN_BEST_SPEEDUP
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--tolerance":
            tolerance = float(args.pop(0))
        elif a == "--min-best-speedup":
            min_best = float(args.pop(0))
        else:
            path = a

    with open(path) as f:
        bench = json.load(f)
    if "simd_kernels" not in bench:
        print(f"{path}: no \"simd_kernels\" section — regenerate the bench "
              f"JSON with a build that emits it (bench/rt_microbench) before "
              f"gating on it", file=sys.stderr)
        return 2
    section = bench["simd_kernels"] or {}
    kernels = section.get("kernels") or []
    if not kernels:
        print(f"{path}: \"simd_kernels\" section present but has no kernel "
              f"rows — the emitting bench run was truncated", file=sys.stderr)
        return 2
    selected = section.get("selected", "scalar")
    max_supported = section.get("max_supported", "scalar")
    print(f"simd: max_supported={max_supported} selected={selected} "
          f"env_override={section.get('env_override', 'auto')}")

    failures = []
    best_speedup = 0.0
    best_kernel = None
    for k in kernels:
        name = k.get("kernel", "?")
        if not k.get("differential_checked", False):
            failures.append(
                f"{name}: differential check failed — some compiled variant "
                f"disagrees with the scalar reference")
        variants = {v["variant"]: v["ns_per_op"] for v in k.get("variants", [])}
        if "scalar" not in variants:
            failures.append(f"{name}: no scalar reference row")
            continue
        if selected not in variants:
            failures.append(f"{name}: selected variant \"{selected}\" has no "
                            f"timing row")
            continue
        scalar_ns = variants["scalar"][-1]
        sel_ns = variants[selected][-1]
        speedup = scalar_ns / sel_ns if sel_ns else 0.0
        print(f"  {name:18s} scalar={scalar_ns:10.4f} ns/op "
              f"{selected}={sel_ns:10.4f} ns/op  speedup={speedup:5.2f}x "
              f"diff={'ok' if k.get('differential_checked') else 'FAIL'}")
        if speedup > best_speedup:
            best_speedup, best_kernel = speedup, name
        if max_supported != "scalar" and sel_ns > scalar_ns * (1 + tolerance):
            failures.append(
                f"{name}: selected variant {selected} is {sel_ns:.4f} ns/op "
                f"vs scalar {scalar_ns:.4f} — slower than the reference "
                f"beyond the {tolerance:.0%} tolerance")

    if max_supported == "scalar":
        print("performance gates skipped: max_supported is scalar (no "
              "vector variant on this host/build); differential flags "
              "checked above")
    elif best_speedup < min_best:
        failures.append(
            f"no kernel reaches {min_best:.1f}x: best is "
            f"{best_kernel} at {best_speedup:.2f}x — the vector variants "
            f"no longer pay for their dispatch")
    else:
        print(f"best kernel speedup: {best_kernel} at {best_speedup:.2f}x "
              f"(floor {min_best:.1f}x)")

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        return 1
    print("simd kernel gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
