#!/usr/bin/env python3
"""Gate the parallel-safety verdicts of the interval race detector.

Reads the "parallel_safety" section of a BENCH_rt.json (or
BENCH_table1.json) produced by a bench run — one row per app, each the
result of batched-edit propagations with runtime/RaceCheck partitioning
the dirty set into OM-timestamp interval groups — and enforces the
committed per-app expectations (docs/PARALLEL_SAFETY.md):

 * Apps on the partitionable list must report zero conflicts. A new
   WW/RW/cascade conflict on filter, map, minimum, quicksort, quickhull,
   or rctree-opt means a code change introduced a cross-interval
   dependence that used to not exist — the exact regression this
   subsystem was built to catch.
 * exptrees is the documented true positive (sibling leaf edits meet in
   a shared ancestor's combine read) and must still CONFLICT: if it
   comes back clean, the detector lost its teeth and every other
   verdict is suspect.
 * The detector must stay paid-for: detector-on loop time at most
   --max-overhead times detector-off (default 3.0x — the committed
   full-scale band is 0.8-1.6x and smoke scale has seen 2.4x, but the
   off-loops are microseconds and CI container timing noise is real),
   and detector-off rows must exist at all.

Exit status: 0 all gates pass; 1 a gate failed; 2 the bench file has no
usable "parallel_safety" section (e.g. the bench was run before the
section existed, or a truncated/partial JSON was committed) — reported
with a diagnostic naming the file rather than a traceback.

Usage:
    check_parallel_safety.py [BENCH_rt.json] [--max-overhead R]
"""

import json
import sys

MAX_OVERHEAD = 3.0

# App -> expected partitionable verdict under the bench's batched,
# spread-position edit schedule. Keep in sync with docs/PARALLEL_SAFETY.md.
EXPECTED_PARTITIONABLE = {
    "filter": True,
    "map": True,
    "minimum": True,
    "quicksort": True,
    "exptrees": False,
    "quickhull": True,
    "rctree-opt": True,
}


def main(argv):
    path = "BENCH_rt.json"
    max_overhead = MAX_OVERHEAD
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--max-overhead":
            max_overhead = float(args.pop(0))
        else:
            path = a

    with open(path) as f:
        bench = json.load(f)
    if "parallel_safety" not in bench:
        print(f"{path}: no \"parallel_safety\" section — regenerate the "
              f"bench JSON with a build that emits it (bench/rt_microbench) "
              f"before gating on it", file=sys.stderr)
        return 2
    section = bench["parallel_safety"] or {}
    rows = section.get("apps") if isinstance(section, dict) else section
    if not rows:
        print(f"{path}: \"parallel_safety\" section present but has no app "
              f"rows — the emitting bench run was truncated or filtered",
              file=sys.stderr)
        return 2
    by_name = {row["name"]: row for row in rows if "name" in row}

    failures = []
    for name, row in sorted(by_name.items()):
        conflicts = (row.get("ww_conflicts", 0) + row.get("rw_conflicts", 0)
                     + row.get("cascade_conflicts", 0))
        partitionable = row.get("partitionable", conflicts == 0)
        off = row.get("detector_off_seconds", 0)
        on = row.get("detector_on_seconds", 0)
        overhead = on / off if off else float("inf")
        expected = EXPECTED_PARTITIONABLE.get(name)
        verdict = "parallel" if partitionable else "conflict"
        print(f"{name:10s} intervals={row.get('max_intervals', 0):2d} "
              f"clusters={row.get('max_clusters', 0):2d} "
              f"conflicts={conflicts:6d} overhead={overhead:5.2f}x "
              f"{verdict}")

        if expected is None:
            continue  # Unlisted app: informational only.
        if expected and not partitionable:
            failures.append(
                f"{name}: expected partitionable, found {conflicts} "
                f"conflicts (ww={row.get('ww_conflicts', 0)} "
                f"rw={row.get('rw_conflicts', 0)} "
                f"cascade={row.get('cascade_conflicts', 0)}) — a new "
                f"cross-interval dependence crept in")
        if not expected and partitionable:
            failures.append(
                f"{name}: expected the documented conflict, found none — "
                f"the detector or the edit schedule went blind")
        if not off or not on:
            failures.append(f"{name}: missing detector timing "
                            f"(off={off}, on={on})")
        elif overhead > max_overhead:
            failures.append(
                f"{name}: detector overhead {overhead:.2f}x exceeds "
                f"{max_overhead:.2f}x")

    for name in EXPECTED_PARTITIONABLE:
        if name not in by_name:
            failures.append(f"{name}: no parallel_safety row in {path}")

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
