#!/usr/bin/env python3
"""Guard the from-scratch construction overhead measured by rt_microbench.

Reads a BENCH_rt.json produced by a bench run and fails if any app's
fromscratch_overhead (self-adjusting initial run / conventional run) is
above its ceiling, or if the field is missing. Ceilings are calibrated
at the CI smoke scale (--app-scale=0.02 --app-samples=20), where fixed
trace costs dominate the tiny inputs, with roughly 10x headroom over
medians observed on a quiet machine: they only trip on order-of-
magnitude regressions — the monotone construction fast path silently
turning off, a new per-node allocation, an accidental audit in Release —
not on CI machine-speed variance.
"""

import json
import sys

# Per-app ceilings at smoke scale. The spread between apps is real:
# filter writes few output cells per input, while minimum builds a
# logarithmic reduction tree whose conventional oracle is a bare loop.
CEILINGS = {
    "filter": 100,
    "map": 450,
    "minimum": 3000,
    "quicksort": 300,
    "exptrees": 700,
}


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_rt.json"
    with open(path) as f:
        bench = json.load(f)

    rows = {row["name"]: row for row in bench.get("update_bench", [])}
    failures = []
    for app, ceiling in CEILINGS.items():
        row = rows.get(app)
        if row is None:
            failures.append(f"{app}: no update_bench row in {path}")
            continue
        overhead = row.get("fromscratch_overhead")
        if overhead is None:
            failures.append(f"{app}: row lacks fromscratch_overhead")
            continue
        status = "ok" if overhead <= ceiling else "FAIL"
        print(f"{app:10s} fromscratch_overhead={overhead:8.1f}  "
              f"ceiling={ceiling:5d}  {status}")
        if overhead > ceiling:
            failures.append(
                f"{app}: fromscratch_overhead {overhead:.1f} exceeds "
                f"ceiling {ceiling}")

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
