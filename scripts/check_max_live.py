#!/usr/bin/env python3
"""Guard the per-app max-live trace footprint measured by rt_microbench.

Reads a BENCH_rt.json produced by a bench run and fails if any app's
max_live_bytes (the trace arena's high-water mark across construction
and the update loop) regressed more than 10% over its baseline, or if
the field is missing. Growing a trace node layout or leaking trace
structure shows up here directly — max-live is deterministic for a
fixed app and scale, so the tolerance only absorbs layout-neutral
drift (memo-table growth points, sample-count changes), not node-size
regressions, which cost well over 10%.

Baselines are calibrated at the CI smoke scale (--app-scale=0.02
--app-samples=20) on the compressed trace layout. Recalibrate (run the
smoke line from .github/workflows/ci.yml and paste the max_live_bytes
column) when deliberately changing what the trace retains; the wide
layout (CEAL_WIDE_TRACE) roughly doubles these numbers, so don't gate
that build with this script.

Usage:
    check_max_live.py [BENCH_rt.json] [--baseline OTHER_BENCH.json]

With --baseline, per-app baselines come from the other run's
update_bench rows instead of the embedded table (A/B comparisons).

The rows may also carry trace-persistence fields (snapshot_bytes,
warm_start_seconds; see bench/AppBench.h). snapshot_bytes is
deterministic like max-live, so in --baseline mode it is gated with the
same tolerance when both runs report it; the embedded table predates
the field and only prints it. warm_start_seconds is wall time and is
gated separately by check_warmstart.py, never here.
"""

import json
import sys

# Per-app max_live_bytes at smoke scale (compressed trace layout).
BASELINES = {
    "filter": 461080,
    "map": 656248,
    "minimum": 2449440,
    "quicksort": 715824,
    "exptrees": 1312928,
    "quickhull": 2521760,
    "rctree-opt": 1581272,
}

TOLERANCE = 0.10


def rows_by_name(path, failures):
    """update_bench rows keyed by app name. Malformed input (unreadable
    file, bad JSON, missing section, row without a name) lands in
    `failures` as a located message instead of a raw traceback."""
    try:
        with open(path) as f:
            bench = json.load(f)
    except OSError as e:
        failures.append(f"{path}: cannot read: {e}")
        return {}
    except json.JSONDecodeError as e:
        failures.append(f"{path}: not valid JSON: {e}")
        return {}
    if "update_bench" not in bench:
        failures.append(f"{path}: no update_bench section")
        return {}
    rows = {}
    for i, row in enumerate(bench["update_bench"]):
        if not isinstance(row, dict) or "name" not in row:
            failures.append(f"{path}: update_bench row {i} has no name field")
            continue
        rows[row["name"]] = row
    return rows


def main(argv):
    path = "BENCH_rt.json"
    baseline_path = None
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--baseline":
            baseline_path = args.pop(0)
        else:
            path = a

    failures = []
    rows = rows_by_name(path, failures)
    base_rows = {}
    if baseline_path:
        base_rows = rows_by_name(baseline_path, failures)
        baselines = {}
        for name, row in sorted(base_rows.items()):
            if "max_live_bytes" not in row:
                failures.append(
                    f"{name}: baseline row in {baseline_path} lacks "
                    f"max_live_bytes")
                continue
            baselines[name] = row["max_live_bytes"]
    else:
        baselines = BASELINES

    for app, base in sorted(baselines.items()):
        row = rows.get(app)
        if row is None:
            failures.append(f"{app}: no update_bench row in {path}")
            continue
        live = row.get("max_live_bytes")
        if live is None:
            failures.append(f"{app}: row in {path} lacks max_live_bytes")
            continue
        limit = base * (1 + TOLERANCE)
        ratio = live / base if base else float("inf")
        status = "ok" if live <= limit else "FAIL"
        snap = row.get("snapshot_bytes", 0)
        snap_note = f"  snapshot_bytes={snap:12d}" if snap else ""
        print(f"{app:10s} max_live_bytes={live:12d}  "
              f"baseline={base:12d}  ratio={ratio:5.2f}  {status}{snap_note}")
        if live > limit:
            failures.append(
                f"{app}: max_live_bytes {live} exceeds baseline {base} "
                f"by {100 * (ratio - 1):.1f}% (> {100 * TOLERANCE:.0f}%)")

    # A/B mode only: snapshot_bytes is as deterministic as max-live, so
    # when both runs report it, gate it the same way.
    if baseline_path:
        for app, row in sorted(base_rows.items()):
            base_snap = row.get("snapshot_bytes", 0)
            cur = rows.get(app)
            snap = cur.get("snapshot_bytes", 0) if cur else 0
            if not base_snap or not snap:
                continue
            limit = base_snap * (1 + TOLERANCE)
            ratio = snap / base_snap
            status = "ok" if snap <= limit else "FAIL"
            print(f"{app:10s} snapshot_bytes={snap:12d}  "
                  f"baseline={base_snap:12d}  ratio={ratio:5.2f}  {status}")
            if snap > limit:
                failures.append(
                    f"{app}: snapshot_bytes {snap} exceeds baseline "
                    f"{base_snap} by {100 * (ratio - 1):.1f}% "
                    f"(> {100 * TOLERANCE:.0f}%)")

    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
